//! The request engine: a supervised worker pool over a bounded micro-batch
//! queue, serving generation-swapped artifacts.
//!
//! Request flow: `submit` claims a slot in the bounded queue (refusing with
//! a structured `overloaded` response when full, or `unavailable` while the
//! panic circuit breaker is open), wraps the request in a [`Job`] with a
//! private reply channel, and pushes it onto the queue; a worker drains a
//! batch, answers each job against the *current generation*, and sends the
//! responses back.
//!
//! **Generations.** The serving state — artifact plus its tower caches —
//! lives in an `Arc<Generation>` behind an `RwLock`. Workers take the read
//! lock only long enough to clone the `Arc`, so a hot reload
//! ([`Engine::reload`] or the `Reload` protocol verb) fully loads and
//! validates the *next* generation off to the side, then swaps the pointer:
//! in-flight requests finish on the generation they started on and no
//! request ever observes a torn or partially validated artifact. A failed
//! load leaves the current generation serving and only bumps the
//! `reload_failures` counter.
//!
//! **Supervision.** Each job runs under `catch_unwind`: a panic becomes a
//! structured `internal` error for that client, feeds the circuit breaker,
//! and backs the worker off briefly. If the breaker sees
//! `breaker_threshold` panics within `breaker_window`, `submit` answers
//! `unavailable` until the window slides past — clients get fast, honest
//! refusals instead of hung connections, and the breaker closes on its own.
//!
//! Results are bit-identical to direct `rrre_core` calls: the engine uses
//! the same `infer_user_tower` / `infer_item_tower` / `infer_heads`
//! decomposition that `Rrre::predict` uses internally, and the same
//! [`rrre_core::rank_candidates`] ordering for recommend/explain.

use crate::artifact::{ModelArtifact, MANIFEST_FILE};
use crate::batch::{BatchConfig, BatchQueue, Completion, Job, QueuePermit};
use crate::cache::{CacheAxis, TowerCache};
use crate::protocol::{ErrorKind, HealthDto, Op, ReplRecordDto, Request, Response};
use crate::replication::{self, AckLevel, QuorumError, Replication, ReplicationConfig};
use crate::stats::{EngineStats, FrontendStats, StatsSnapshot};
use crate::wal::{self, FsyncPolicy, IngestLedger, SeqSet, WalRecord, WalWriter};
use rrre_core::{rank_candidates, ColdStartPrior, Prediction, EXPLANATION_RELIABILITY_THRESHOLD};
use rrre_shard::ShardMap;
use rrre_data::{ItemId, Label, Review, UserId};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// WAL directory name inside an ingest-enabled artifact directory.
pub const WAL_DIR: &str = "wal";

/// Engine sizing and fault-tolerance knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum jobs per micro-batch.
    pub max_batch: usize,
    /// Batch collection window after the first job arrives.
    pub max_wait: Duration,
    /// Lock stripes per tower cache.
    pub cache_shards: usize,
    /// Maximum queued-but-unserved jobs before `submit` sheds with a
    /// structured `overloaded` response.
    pub queue_cap: usize,
    /// Worker panics within [`EngineConfig::breaker_window`] that trip the
    /// circuit breaker.
    pub breaker_threshold: usize,
    /// Sliding window the breaker counts panics over; it closes again once
    /// the panics age out.
    pub breaker_window: Duration,
    /// How long a worker sleeps after catching a panic before taking the
    /// next batch (damps crash loops from poison-pill request streams).
    pub panic_backoff: Duration,
    /// Accept the `Crash` protocol verb (deliberate worker panic) — for
    /// supervision drills and tests only. Defaults to off: production
    /// engines refuse the verb.
    pub fault_injection: bool,
    /// Which shard of the artifact's consistent-hash map this engine
    /// serves. `None` (the default) is the whole-model fallback: the
    /// engine answers for every entity, regardless of how many shards the
    /// manifest declares. `Some(s)` scopes the engine to shard `s` —
    /// requests for items another shard owns are refused with a structured
    /// `WrongShard`, and `Recommend` scores only the owned slice of the
    /// catalog (this engine's side of a scatter-gather fan-out).
    pub shard_id: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            cache_shards: 16,
            queue_cap: 1024,
            breaker_threshold: 5,
            breaker_window: Duration::from_secs(10),
            panic_backoff: Duration::from_millis(10),
            fault_injection: false,
            shard_id: None,
        }
    }
}

/// Durable streaming-ingest knobs ([`Engine::open_with_ingest`]).
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// When appended records reach the platter. [`FsyncPolicy::EveryRecord`]
    /// (the default) makes every ack a durability promise;
    /// [`FsyncPolicy::Batched`] is a relaxed benchmarking knob.
    pub fsync: FsyncPolicy,
    /// Auto-refresh the serving towers once this many accepted records are
    /// pending. `1` (the default) folds every review in before its ack
    /// returns; `0` disables auto-refresh entirely — only
    /// [`Engine::refresh_now`] / [`Engine::compact_now`] fold.
    pub refresh_every: usize,
    /// Entity pairs where either side has fewer than this many reviews get
    /// the calibrated cold-start reliability prior instead of the
    /// reliability head's score ([`ColdStartPrior`]). `0` (the default)
    /// disables the prior.
    pub cold_start_min: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryRecord,
            refresh_every: 1,
            cold_start_min: 0,
        }
    }
}

/// Mutable ingest bookkeeping, all under one lock so the WAL's append
/// order and the dedup set can never disagree.
struct IngestInner {
    wal: WalWriter,
    /// Every sequence id ever durably accepted: the compaction ledger's
    /// set, plus WAL replay, plus live appends. Membership ⇒ the review is
    /// (or will be) applied, so a resend acks `duplicate` without side
    /// effects.
    accepted: SeqSet,
    /// Accepted records not yet folded into the on-disk artifact, in WAL
    /// append order. Compaction drains a prefix of this.
    unfolded: Vec<WalRecord>,
    /// Prefix of `unfolded` already published into the serving towers.
    /// Reset to zero whenever the serving pointer is replaced by a
    /// *loaded* generation (reload/compaction), which reflects only the
    /// on-disk dataset.
    refreshed: usize,
    /// The durable compaction ledger as of the last committed fold.
    ledger: IngestLedger,
}

/// The engine's ingest half: WAL, dedup state and the maintenance lock
/// that serializes refreshes with compactions.
struct IngestState {
    cfg: IngestConfig,
    wal_dir: PathBuf,
    inner: Mutex<IngestInner>,
    /// Held across a whole refresh or compaction. Lock order:
    /// `maintenance` → `inner` → `current` (write); never acquire left
    /// after right.
    maintenance: Mutex<()>,
}

/// One immutable serving state: an artifact and the tower caches built
/// against it. Swapped wholesale on reload — caches never outlive the
/// weights they were computed from.
pub struct Generation {
    /// Monotonic generation number (the first load is generation 1).
    pub id: u64,
    /// The artifact this generation serves.
    pub artifact: ModelArtifact,
    /// The consistent-hash map built from the manifest's shard spec. Kept
    /// on the generation so the map version swaps atomically with the
    /// weights on reload — ownership decisions and the data they are made
    /// over can never disagree.
    pub shard_map: ShardMap,
    /// The calibrated cold-start reliability prior, when the engine was
    /// opened with [`IngestConfig::cold_start_min`] `> 0`. Thin pairs get
    /// its reliability instead of the head score.
    pub prior: Option<ColdStartPrior>,
    pub(crate) user_cache: TowerCache,
    pub(crate) item_cache: TowerCache,
}

/// State shared between the engine handle and its workers.
struct Shared {
    current: RwLock<Arc<Generation>>,
    stats: EngineStats,
    /// Front-end (event loop) counters, held here so `Op::Stats` can
    /// report them; the TCP server updates them through
    /// [`Engine::frontend_stats`]. All zero on engines served without a
    /// front end.
    frontend: Arc<FrontendStats>,
    cfg: EngineConfig,
    queue_depth: Arc<AtomicUsize>,
    next_generation: AtomicU64,
    /// `Some` when the engine accepts `IngestReview`/`Compact`.
    ingest: Option<IngestState>,
    /// Timestamps of recent worker panics (pruned to `breaker_window`).
    breaker: Mutex<Vec<Instant>>,
    /// Set when the front end begins draining for shutdown: the engine
    /// keeps answering (in-flight and pipelined requests finish) but
    /// reports not-ready so health-aware clients route elsewhere.
    draining: AtomicBool,
    /// `Some` when this engine is one replica of a replicated shard
    /// ([`Engine::open_replicated`]): leader-term fencing, the replication
    /// log, shippers and quorum acks all hang off this.
    repl: Option<Arc<Replication>>,
}

impl Shared {
    /// Clones the current generation pointer (the only read-lock hold).
    fn generation(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn record_panic(&self) {
        let now = Instant::now();
        let mut panics = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        panics.push(now);
        let window = self.cfg.breaker_window;
        panics.retain(|&t| now.duration_since(t) <= window);
    }

    fn breaker_open(&self) -> bool {
        let now = Instant::now();
        let mut panics = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        let window = self.cfg.breaker_window;
        panics.retain(|&t| now.duration_since(t) <= window);
        panics.len() >= self.cfg.breaker_threshold
    }
}

/// A running inference engine. Cheap to share (`&Engine` is `Sync`);
/// dropped or explicitly [`Engine::shutdown`], it drains and joins its
/// workers.
pub struct Engine {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawns the worker pool over a loaded artifact.
    ///
    /// # Panics
    /// Panics if the artifact's model has no frozen cache (loads via
    /// [`ModelArtifact::load`] always do) or `cfg.workers == 0`.
    pub fn new(artifact: ModelArtifact, cfg: EngineConfig) -> Self {
        Self::build(artifact, cfg, None, None)
    }

    /// Opens an artifact directory for *durable streaming ingest*: rolls
    /// any interrupted compaction forward (or back) from its staging
    /// directory, loads the artifact, replays and repairs the WAL, then
    /// folds every replayed record back into the serving towers — exactly
    /// once, deduplicated against the compaction ledger. After this
    /// returns, every review whose ingest was ever acknowledged is visible
    /// to predictions again.
    ///
    /// Mid-log WAL corruption (a bytewise-complete record failing its CRC)
    /// fails the open closed with `InvalidData` — a torn tail from a crash
    /// is repaired, bit rot is never guessed over.
    pub fn open_with_ingest(
        dir: impl AsRef<Path>,
        cfg: EngineConfig,
        ingest: IngestConfig,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        wal::recover_staging(dir, MANIFEST_FILE)?;
        let artifact = ModelArtifact::load(dir)?;
        Self::with_ingest(artifact, cfg, ingest)
    }

    /// [`Engine::open_with_ingest`] as one replica of a replicated shard:
    /// the WAL is shipped between replicas, ingest acks honour
    /// [`ReplicationConfig`]'s ack level, and leader terms fence stale
    /// traffic. The replication log is seeded from the same replay set the
    /// towers are, so positions line up across replicas that started from
    /// the same artifact.
    pub fn open_replicated(
        dir: impl AsRef<Path>,
        cfg: EngineConfig,
        ingest: IngestConfig,
        repl: ReplicationConfig,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        wal::recover_staging(dir, MANIFEST_FILE)?;
        let artifact = ModelArtifact::load(dir)?;
        Self::with_ingest_impl(artifact, cfg, ingest, Some(repl))
    }

    /// [`Engine::new`] plus the durable ingest path (WAL, refresh,
    /// compaction) rooted at `artifact.source_dir`. Prefer
    /// [`Engine::open_with_ingest`] when opening from disk — it also
    /// completes an interrupted compaction *before* the load reads the
    /// manifest.
    pub fn with_ingest(
        artifact: ModelArtifact,
        cfg: EngineConfig,
        ingest: IngestConfig,
    ) -> io::Result<Self> {
        Self::with_ingest_impl(artifact, cfg, ingest, None)
    }

    fn with_ingest_impl(
        artifact: ModelArtifact,
        cfg: EngineConfig,
        ingest: IngestConfig,
        repl_cfg: Option<ReplicationConfig>,
    ) -> io::Result<Self> {
        let ledger = wal::load_ledger(&artifact.source_dir)?;
        let wal_dir = artifact.source_dir.join(WAL_DIR);
        let recovery = wal::replay_and_repair(&wal_dir)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Rebuild the accepted set: everything the ledger says is already
        // folded, plus everything still sitting in the WAL. Replayed
        // records the ledger already covers were folded by a committed
        // compaction — applying them again would double-count.
        let mut accepted = ledger.applied.clone();
        let mut unfolded = Vec::new();
        for rec in recovery.records {
            if accepted.insert(rec.seq) {
                unfolded.push(rec);
            }
        }
        let repl = match repl_cfg {
            Some(rc) => {
                let repl = Arc::new(Replication::open(&artifact.source_dir, rc)?);
                // Seed the replication log with the replayed-but-unfolded
                // records; everything the ledger already folded sits below
                // the log base and is no longer fetchable (a follower that
                // far behind needs an artifact resync, not shipping).
                repl.seed(unfolded.clone(), ledger.applied.len());
                Some(repl)
            }
            None => None,
        };
        let writer = WalWriter::open(&wal_dir, ingest.segment_bytes, ingest.fsync)?;
        let state = IngestState {
            cfg: ingest,
            wal_dir,
            inner: Mutex::new(IngestInner {
                wal: writer,
                accepted,
                unfolded,
                refreshed: 0,
                ledger,
            }),
            maintenance: Mutex::new(()),
        };
        let engine = Self::build(artifact, cfg, Some(state), repl.clone());
        engine.shared.stats.wal_bytes.store(recovery.bytes, Ordering::Relaxed);
        engine.shared.stats.wal_recoveries.store(recovery.truncated_tails, Ordering::Relaxed);
        // Replayed-but-unfolded records go straight back into the towers:
        // an acked review survives the crash *and* answers predictions
        // again before the first post-restart request is served.
        do_refresh(&engine.shared)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if let Some(repl) = repl {
            if repl.is_leader() {
                repl.spawn_shippers();
            }
            // The catch-up thread runs on every replicated engine but only
            // acts while the replica is a follower with a known leader; it
            // exits with `Replication::stop`.
            let shared = Arc::clone(&engine.shared);
            let handle = std::thread::Builder::new()
                .name("rrre-repl-catchup".into())
                .spawn(move || catchup_loop(&shared))
                .expect("failed to spawn replication catch-up thread");
            engine.workers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
        }
        Ok(engine)
    }

    fn build(
        artifact: ModelArtifact,
        cfg: EngineConfig,
        ingest: Option<IngestState>,
        repl: Option<Arc<Replication>>,
    ) -> Self {
        assert!(cfg.workers >= 1, "Engine: need at least one worker");
        assert!(cfg.queue_cap >= 1, "Engine: queue_cap must be ≥ 1");
        assert!(cfg.breaker_threshold >= 1, "Engine: breaker_threshold must be ≥ 1");
        assert!(
            artifact.model.has_frozen_cache(),
            "Engine: artifact model is not frozen for inference"
        );
        let shard_map = ShardMap::new(artifact.manifest.shard_spec)
            .expect("Engine: artifact manifest carries an invalid shard spec");
        if let Some(shard) = cfg.shard_id {
            assert!(
                shard < shard_map.shards(),
                "Engine: shard_id {shard} out of range (artifact declares {} shards)",
                shard_map.shards()
            );
        }
        let prior = ingest.as_ref().and_then(|s| {
            (s.cfg.cold_start_min > 0)
                .then(|| ColdStartPrior::calibrate(&artifact.dataset, s.cfg.cold_start_min))
        });
        let generation = Arc::new(Generation {
            id: 1,
            artifact,
            shard_map,
            prior,
            user_cache: TowerCache::new(CacheAxis::User, cfg.cache_shards),
            item_cache: TowerCache::new(CacheAxis::Item, cfg.cache_shards),
        });
        let shared = Arc::new(Shared {
            current: RwLock::new(generation),
            stats: EngineStats::default(),
            frontend: Arc::new(FrontendStats::default()),
            cfg,
            queue_depth: Arc::new(AtomicUsize::new(0)),
            next_generation: AtomicU64::new(2),
            ingest,
            breaker: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            repl,
        });
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: cfg.max_batch,
            max_wait: cfg.max_wait,
        });
        let queue = Arc::new(queue);
        let workers = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("rrre-serve-worker-{w}"))
                    .spawn(move || supervised_worker(&shared, &queue))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Self { shared, tx: Mutex::new(Some(tx)), workers: Mutex::new(workers) }
    }

    /// Submits one request and blocks for its response. Never hangs: a full
    /// queue sheds immediately, an open breaker refuses immediately, and a
    /// worker panic mid-request still produces a structured reply.
    pub fn submit(&self, request: Request) -> Response {
        let id = request.id;
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submit_with(request, Completion::channel(reply_tx, id));
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::internal(id, "engine dropped the request"))
    }

    /// Submits one request without blocking: `complete` fires exactly once
    /// with the response — immediately on the calling thread for refusals
    /// (breaker open, queue full, shutdown) and the inline `Health`
    /// answer, or on a worker thread otherwise. This is the event loop's
    /// path: thousands of in-flight requests without a parked thread each.
    pub fn submit_async(&self, request: Request, complete: impl FnOnce(Response) + Send + 'static) {
        let id = request.id;
        self.submit_with(request, Completion::callback(Box::new(complete), id));
    }

    /// The single submission path behind [`Engine::submit`] and
    /// [`Engine::submit_async`]: shed/breaker/health interception, then
    /// the bounded queue.
    fn submit_with(&self, request: Request, completion: Completion) {
        let id = request.id;
        // Health bypasses the queue, the shed gate and the breaker: a
        // replica must stay observable precisely when it is refusing
        // work, and the answer is a handful of atomic loads.
        if request.op == Op::Health {
            let mut resp = Response::ok(id);
            let health = self.health();
            resp.generation = Some(health.generation);
            resp.health = Some(health);
            completion.complete(resp);
            return;
        }
        if self.shared.breaker_open() {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            completion.complete(Response::unavailable(
                id,
                "circuit breaker open after repeated worker panics, retry with backoff",
            ));
            return;
        }
        let Some(permit) = QueuePermit::acquire(&self.shared.queue_depth, self.shared.cfg.queue_cap)
        else {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            completion.complete(Response::overloaded(id));
            return;
        };
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(tx) => {
                if let Err(refused) = tx.send(Job::with_permit(request, completion, permit)) {
                    // The queue disconnected under us; the job comes back
                    // whole, so answer it honestly (dropping the permit
                    // with the rest of the job).
                    let Job { reply, .. } = refused.0;
                    reply.complete(Response::unavailable(id, "engine is shut down"));
                }
            }
            None => {
                drop(permit);
                completion.complete(Response::unavailable(id, "engine is shut down"));
            }
        }
    }

    /// Parses one protocol line and submits it; parse failures become
    /// error responses rather than dropped connections.
    pub fn submit_line(&self, line: &str) -> Response {
        match crate::protocol::decode_request(line) {
            Ok(req) => self.submit(req),
            // Even an undecodable request should correlate its error when
            // possible: pipelining clients match replies by id, and a
            // `null`-id error desynchronises their whole window.
            Err(e) => Response::error_kind(
                crate::protocol::extract_id(line),
                ErrorKind::BadRequest,
                e,
            ),
        }
    }

    /// [`Engine::submit_line`] for the nonblocking path: parse failures
    /// complete immediately on the calling thread with the same structured
    /// `BadRequest` (and best-effort id recovery) the blocking path
    /// produces.
    pub fn submit_line_async(&self, line: &str, complete: impl FnOnce(Response) + Send + 'static) {
        match crate::protocol::decode_request(line) {
            Ok(req) => self.submit_async(req, complete),
            Err(e) => complete(Response::error_kind(
                crate::protocol::extract_id(line),
                ErrorKind::BadRequest,
                e,
            )),
        }
    }

    /// The front-end counter block shared with the TCP server (the event
    /// loop updates it; `Op::Stats` reads it).
    pub fn frontend_stats(&self) -> Arc<FrontendStats> {
        Arc::clone(&self.shared.frontend)
    }

    /// The liveness/readiness split (also served by `Op::Health`): ready
    /// means not draining and breaker closed, with a validated generation
    /// loaded. A *failed* reload never clears readiness — the previous
    /// generation keeps serving unimpaired.
    pub fn health(&self) -> HealthDto {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let breaker_open = self.shared.breaker_open();
        HealthDto {
            live: true,
            ready: !draining && !breaker_open,
            draining,
            breaker_open,
            generation: self.shared.generation().id,
        }
    }

    /// Marks the engine as draining (or not). Set by the TCP front end
    /// when shutdown begins so health probes steer traffic away before
    /// the listener disappears.
    pub fn set_draining(&self, draining: bool) {
        self.shared.draining.store(draining, Ordering::SeqCst);
    }

    /// Point-in-time engine counters (also served by `Op::Stats`).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// The generation currently serving (artifact + caches). In-flight
    /// requests may still be finishing on an older generation for a moment
    /// after a reload.
    pub fn generation(&self) -> Arc<Generation> {
        self.shared.generation()
    }

    /// Re-loads the artifact from the directory the current generation was
    /// loaded from and atomically swaps it in. The load runs to completion
    /// — checksums, manifest cross-checks, model restore — before the swap,
    /// so a corrupt artifact on disk never serves; the old generation keeps
    /// serving and the error is returned (and counted in
    /// `reload_failures`).
    pub fn reload(&self) -> Result<u64, String> {
        do_reload(&self.shared)
    }

    /// Whether this engine accepts `IngestReview`/`Compact` (opened via
    /// [`Engine::open_with_ingest`]).
    pub fn ingest_enabled(&self) -> bool {
        self.shared.ingest.is_some()
    }

    /// The replication state, when this engine was opened via
    /// [`Engine::open_replicated`].
    pub fn replication(&self) -> Option<Arc<Replication>> {
        self.shared.repl.clone()
    }

    /// Synchronously folds every accepted-but-unapplied WAL record into
    /// the serving towers: a frozen-encoder incremental refresh that
    /// re-encodes only the new reviews and republishes under the *same*
    /// generation id. Returns how many records were applied (`0` when the
    /// towers are already current). Errors when ingest is not enabled.
    pub fn refresh_now(&self) -> Result<usize, String> {
        do_refresh(&self.shared)
    }

    /// Synchronously compacts the WAL into a new artifact generation:
    /// stages the folded dataset beside the artifact directory, seals it
    /// with a fsync'd `COMMIT` marker, promotes it atomically (manifest
    /// last), hot-reloads, then truncates the folded segments. Crash-safe
    /// at every step — recovery either completes or undoes the fold.
    /// Returns `(records folded, serving generation id)`.
    pub fn compact_now(&self) -> Result<(u64, u64), String> {
        do_compact(&self.shared)
    }

    /// Graceful shutdown: stop accepting, let queued jobs finish, join the
    /// workers. Idempotent; `Drop` calls it too.
    pub fn shutdown(&self) {
        // Replication threads (shippers, catch-up) park on condvars and
        // sleeps; stop them first so the join below cannot hang.
        if let Some(repl) = self.shared.repl.as_deref() {
            repl.stop();
        }
        drop(self.tx.lock().unwrap_or_else(|e| e.into_inner()).take());
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Loads the next generation off to the side and swaps it in, or keeps the
/// current one on any failure. Shared by [`Engine::reload`] and the
/// `Reload` protocol verb.
fn do_reload(shared: &Shared) -> Result<u64, String> {
    shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
    let (dir, current_id, current_map_version) = {
        let current = shared.generation();
        (current.artifact.source_dir.clone(), current.id, current.shard_map.version())
    };
    // Full staging-area validation: `ModelArtifact::load` verifies every
    // checksum and cross-check before we ever touch the serving pointer.
    match ModelArtifact::load(&dir) {
        Ok(artifact) => {
            // The reloaded manifest may carry a *new* shard spec (topology
            // change shipped with the weights); this engine must still be a
            // member of it, or the old generation keeps serving.
            let shard_map = match ShardMap::new(artifact.manifest.shard_spec) {
                Ok(map) => map,
                Err(e) => {
                    shared.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "reload from {} failed (bad shard spec: {e}); generation {current_id} \
                         keeps serving",
                        dir.display()
                    ));
                }
            };
            if let Some(shard) = shared.cfg.shard_id {
                if shard >= shard_map.shards() {
                    shared.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "reload from {} failed (this engine serves shard {shard} but the new \
                         manifest declares only {} shards); generation {current_id} keeps serving",
                        dir.display(),
                        shard_map.shards()
                    ));
                }
            }
            // The map version is the fleet's topology clock: clients and
            // the scatter-gather tier treat a higher version as newer, so
            // a manifest whose version goes *backwards* (a stale artifact
            // restored over a newer one) must never start serving — it
            // would make every current client look "from the future".
            if shard_map.version() < current_map_version {
                shared.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                return Err(format!(
                    "reload from {} refused: manifest shard-map version {} is behind the \
                     serving version {current_map_version} (topology versions must never \
                     roll backwards); generation {current_id} keeps serving",
                    dir.display(),
                    shard_map.version()
                ));
            }
            let prior = shared.ingest.as_ref().and_then(|s| {
                (s.cfg.cold_start_min > 0)
                    .then(|| ColdStartPrior::calibrate(&artifact.dataset, s.cfg.cold_start_min))
            });
            let id = shared.next_generation.fetch_add(1, Ordering::Relaxed);
            let generation = Arc::new(Generation {
                id,
                artifact,
                shard_map,
                prior,
                user_cache: TowerCache::new(CacheAxis::User, shared.cfg.cache_shards),
                item_cache: TowerCache::new(CacheAxis::Item, shared.cfg.cache_shards),
            });
            publish_loaded(shared, generation);
            Ok(id)
        }
        Err(e) => {
            shared.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
            Err(format!(
                "reload from {} failed ({e}); generation {current_id} keeps serving",
                dir.display()
            ))
        }
    }
}

/// Swaps the serving pointer to a generation *loaded from disk*. When
/// ingest is enabled, the swap and the refresh low-water mark move
/// together (lock order: ingest `inner` → `current`): a loaded generation
/// reflects only the on-disk dataset, so every un-compacted WAL record
/// must be re-applied by the next refresh.
fn publish_loaded(shared: &Shared, generation: Arc<Generation>) {
    let mut inner_guard = shared
        .ingest
        .as_ref()
        .map(|s| s.inner.lock().unwrap_or_else(|e| e.into_inner()));
    *shared.current.write().unwrap_or_else(|e| e.into_inner()) = generation;
    if let Some(inner) = inner_guard.as_deref_mut() {
        inner.refreshed = 0;
    }
}

/// [`Engine::refresh_now`] behind the maintenance lock.
fn do_refresh(shared: &Shared) -> Result<usize, String> {
    let state =
        shared.ingest.as_ref().ok_or("ingest is not enabled on this engine")?;
    let _serialize = state.maintenance.lock().unwrap_or_else(|e| e.into_inner());
    refresh_locked(shared, state)
}

/// Folds every accepted-but-unapplied WAL record into a copy-on-write
/// clone of the current generation and republishes it under the *same*
/// generation id. The encoder stays frozen: each new review is encoded
/// with the exact per-review path a full re-encode would take, so the
/// refreshed towers are bit-identical to rebuilding from scratch. Caller
/// holds the maintenance lock.
fn refresh_locked(shared: &Shared, state: &IngestState) -> Result<usize, String> {
    loop {
        let (batch, start) = {
            let inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
            (inner.unfolded[inner.refreshed..].to_vec(), inner.refreshed)
        };
        if batch.is_empty() {
            return Ok(0);
        }
        let base = shared.generation();
        let disk_len = base.artifact.manifest.n_reviews;
        if base.artifact.dataset.len() != disk_len + start {
            return Err(format!(
                "refresh invariant broken: serving dataset has {} reviews, expected {disk_len} \
                 on-disk + {start} refreshed",
                base.artifact.dataset.len()
            ));
        }
        let mut dataset = base.artifact.dataset.clone();
        let mut corpus = base.artifact.corpus.clone();
        let mut model = base.artifact.model.clone();
        let first_new = dataset.len();
        for rec in &batch {
            dataset.append_review(Review {
                user: UserId(rec.user),
                item: ItemId(rec.item),
                rating: rec.rating,
                // Ground truth is unknowable at ingest time; labels only
                // matter to a future training run over the folded dataset,
                // and the cold-start prior covers the reliability
                // uncertainty until then.
                label: Label::Benign,
                timestamp: rec.ts,
                text: rec.text.clone(),
            })?;
            corpus.append_doc(&rec.text);
        }
        model.refresh_towers(&dataset, &corpus, first_new)?;
        let index = dataset.index();
        let prior = (state.cfg.cold_start_min > 0)
            .then(|| ColdStartPrior::calibrate(&dataset, state.cfg.cold_start_min));
        let artifact = ModelArtifact {
            manifest: base.artifact.manifest.clone(),
            dataset,
            corpus,
            model,
            index,
            source_dir: base.artifact.source_dir.clone(),
        };
        let generation = Arc::new(Generation {
            // Same id: a refresh updates towers in place, it is not a
            // generation swap — clients see no reload.
            id: base.id,
            artifact,
            shard_map: base.shard_map.clone(),
            prior,
            // Fresh caches = conservative entity invalidation. The touched
            // entities' towers changed; a cache *shared* with the old
            // generation could be repopulated with stale towers by
            // in-flight jobs still pinned to it. Untouched entries
            // recompute to bit-identical values on their next request.
            user_cache: TowerCache::new(CacheAxis::User, shared.cfg.cache_shards),
            item_cache: TowerCache::new(CacheAxis::Item, shared.cfg.cache_shards),
        });
        {
            let mut inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
            let mut cur = shared.current.write().unwrap_or_else(|e| e.into_inner());
            if !Arc::ptr_eq(&*cur, &base) {
                // A reload swapped the pointer while we encoded; the clone
                // is stale. Re-read the low-water mark and redo the fold.
                continue;
            }
            *cur = generation;
            inner.refreshed = start + batch.len();
        }
        shared.stats.refreshes.fetch_add(1, Ordering::Relaxed);
        return Ok(batch.len());
    }
}

/// [`Engine::compact_now`]: fold the WAL into a new artifact generation
/// via the two-phase staging protocol, reload, truncate folded segments.
fn do_compact(shared: &Shared) -> Result<(u64, u64), String> {
    let state =
        shared.ingest.as_ref().ok_or("ingest is not enabled on this engine")?;
    let _serialize = state.maintenance.lock().unwrap_or_else(|e| e.into_inner());

    // Snapshot under the ingest lock: rotate first so every snapshotted
    // record lives in a segment below the new watermark; appends arriving
    // after the rotation land in the fresh segment and simply miss this
    // compaction.
    let (snapshot, watermark, mut ledger) = {
        let mut inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
        let watermark =
            inner.wal.rotate().map_err(|e| format!("wal rotate failed: {e}"))?;
        (inner.unfolded.clone(), watermark, inner.ledger.clone())
    };
    if snapshot.is_empty() {
        return Ok((0, shared.generation().id));
    }
    let base = shared.generation();
    let manifest = &base.artifact.manifest;
    let disk_len = manifest.n_reviews;
    // The fold set is on-disk reviews + the whole snapshot; the serving
    // dataset may already include a *refreshed* prefix of the snapshot, so
    // truncate back to the durable base before re-appending.
    let mut dataset = base.artifact.dataset.clone();
    dataset.reviews.truncate(disk_len);
    let mut corpus = base.artifact.corpus.clone();
    corpus.docs.truncate(disk_len);
    for rec in &snapshot {
        dataset
            .append_review(Review {
                user: UserId(rec.user),
                item: ItemId(rec.item),
                rating: rec.rating,
                label: Label::Benign,
                timestamp: rec.ts,
                text: rec.text.clone(),
            })
            .map_err(|e| format!("compaction fold failed: {e}"))?;
        corpus.append_doc(&rec.text);
    }

    // Phase one: stage the folded artifact plus its ledger beside the
    // artifact directory, then seal with a fsync'd COMMIT marker. Nothing
    // under the serving directory moves until the fold is fully decided.
    let staging = wal::staging_dir(&base.artifact.source_dir);
    let _ = std::fs::remove_dir_all(&staging); // stale uncommitted attempt
    ModelArtifact::save_pinned(
        &staging,
        &dataset,
        &corpus,
        &base.artifact.model,
        manifest.min_count,
        manifest.shard_spec,
        manifest.vocab_reviews,
    )
    .map_err(|e| format!("compaction stage failed: {e}"))?;
    for rec in &snapshot {
        ledger.applied.insert(rec.seq);
    }
    ledger.segment_watermark = watermark;
    wal::save_ledger(&staging, &ledger)
        .map_err(|e| format!("compaction ledger write failed: {e}"))?;
    wal::seal_staging(&staging).map_err(|e| format!("compaction seal failed: {e}"))?;

    // Phase two: promote (manifest last) and hot-reload. A crash anywhere
    // in here is rolled forward by `recover_staging` on the next open —
    // the COMMIT marker has decided the fold.
    wal::promote_staging(&base.artifact.source_dir, MANIFEST_FILE)
        .map_err(|e| format!("compaction promote failed: {e}"))?;
    let generation = do_reload(shared)?;
    {
        let mut inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.unfolded.drain(..snapshot.len());
        inner.refreshed = 0;
        inner.ledger = ledger;
        // The folded prefix leaves the in-memory replication log too (lock
        // order ingest `inner` → repl, matching the append paths; the log
        // and `unfolded` grow in lockstep, so the drained prefixes match).
        // `base` advances by the same amount, keeping every replica's
        // absolute position — and the followers' acked watermarks — intact;
        // positions below the new base are no longer fetchable, and
        // shippers already park on a follower that far behind (it needs an
        // artifact resync, not shipping).
        if let Some(repl) = shared.repl.as_deref() {
            let mut rinner = repl.lock();
            rinner.log.drain(..snapshot.len());
            rinner.base += snapshot.len() as u64;
        }
    }
    // Folded segments are garbage: their records live in the artifact and
    // the ledger remembers their seq ids. Best-effort — leftovers replay
    // harmlessly through the ledger dedup.
    let _ = wal::remove_segments_below(&state.wal_dir, watermark);
    let on_disk: u64 = wal::list_segments(&state.wal_dir)
        .map(|segs| {
            segs.iter()
                .filter_map(|(_, p)| std::fs::metadata(p).ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    shared.stats.wal_bytes.store(on_disk, Ordering::Relaxed);
    shared.stats.compactions.fetch_add(1, Ordering::Relaxed);
    // Records that arrived mid-fold go back into the towers immediately.
    refresh_locked(shared, state)?;
    Ok((snapshot.len() as u64, generation))
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    // The replication gauges live on the replication state; fold them into
    // the atomic block here so one snapshot call reads everything.
    if let Some(repl) = shared.repl.as_deref() {
        let (epoch, count, lag) = repl.stats();
        shared.stats.epoch.store(epoch, Ordering::Relaxed);
        shared.stats.replicated_seq.store(count, Ordering::Relaxed);
        shared.stats.replication_lag.store(lag, Ordering::Relaxed);
    }
    let generation = shared.generation();
    shared.stats.snapshot(
        &generation.user_cache,
        &generation.item_cache,
        generation.id,
        shared.breaker_open(),
        shared.draining.load(Ordering::SeqCst),
        shared.cfg.shard_id,
        &shared.frontend,
    )
}

/// Applies a contiguous run of replicated records starting at log position
/// `from` — the shared core of the `Replicate` push path and follower
/// catch-up. Re-delivery is idempotent twice over: positions at or below
/// the local count are skipped wholesale, and a skipped-position record
/// whose seq is nonetheless already in the dedup set is a *divergence*
/// (same position, different history) that fails closed rather than
/// guessing. Returns the new durable count.
fn apply_replicated(shared: &Shared, from: u64, records: &[ReplRecordDto]) -> Result<u64, String> {
    let state = shared.ingest.as_ref().ok_or("ingest is not enabled on this engine")?;
    let repl = shared.repl.as_deref().ok_or("replication is not enabled on this engine")?;
    let (new_count, pending) = {
        // Lock order: ingest `inner` → `repl` inner, same as the leader's
        // append path, so WAL order and log order can never disagree.
        let mut inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut rinner = repl.lock();
        let count = rinner.count();
        if from > count {
            // A gap: the leader is shipping ahead of us. Don't apply —
            // reporting our (unchanged) count makes the leader rewind.
            return Ok(count);
        }
        let skip = (count - from) as usize;
        for dto in records.iter().skip(skip) {
            if !dto.verify() {
                return Err(format!("replicated record seq {} failed its CRC in transit", dto.seq));
            }
            if inner.accepted.contains(dto.seq) {
                // This position is new but the seq is not: the replicas'
                // histories disagree. Applying would double-count and
                // silently fork the shard — refuse instead.
                return Err(format!(
                    "replication divergence: seq {} already applied at an earlier position; \
                     this replica needs a resync",
                    dto.seq
                ));
            }
            let rec = WalRecord {
                seq: dto.seq,
                user: dto.user,
                item: dto.item,
                rating: dto.rating,
                ts: dto.ts,
                text: dto.text.clone(),
            };
            let bytes = inner.wal.append(&rec).map_err(|e| format!("wal append failed: {e}"))?;
            shared.stats.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
            inner.accepted.insert(dto.seq);
            inner.unfolded.push(rec.clone());
            rinner.log.push(rec);
        }
        (rinner.count(), inner.unfolded.len() - inner.refreshed)
    };
    repl.notify();
    if state.cfg.refresh_every > 0 && pending >= state.cfg.refresh_every {
        // Same contract as client ingest: durability is decided, a refresh
        // failure must not retract it.
        if let Err(e) = do_refresh(shared) {
            eprintln!("rrre-serve: deferred replication refresh failed: {e}");
        }
    }
    Ok(new_count)
}

/// Follower catch-up: pulls missing log positions from the last known
/// leader with `FetchWal` until level, then idles. Runs on every
/// replicated engine but no-ops while this replica is the leader. The push
/// path self-heals ongoing gaps; this loop exists for restart recovery,
/// when a follower may be arbitrarily far behind before the leader's
/// shipper even learns its address.
///
/// Every fetch is epoch-fenced end to end: the request carries this
/// replica's term, a stale serving replica (a deposed leader the hint
/// still names) refuses rather than hand out records its fenced term never
/// committed, and nothing from a response whose epoch is *below* ours is
/// ever applied. A higher response term is adopted (persisted) before the
/// records are — catch-up can move this replica's term forward, never let
/// a fenced log leak in.
fn catchup_loop(shared: &Arc<Shared>) {
    let Some(repl) = shared.repl.clone() else { return };
    let mut conn = None;
    let mut link_failures = 0u64;
    let idle = Duration::from_millis(200);
    loop {
        if repl.stopping() {
            return;
        }
        let (is_follower, hint, my_count, my_epoch) = {
            let inner = repl.lock();
            (!inner.leader, inner.leader_hint.clone(), inner.count(), inner.epoch)
        };
        let Some(addr) = hint.filter(|_| is_follower) else {
            std::thread::sleep(idle);
            continue;
        };
        let req = Request::fetch_wal(my_epoch, my_count, 16);
        match replication::exchange_on(&mut conn, &addr, &req, Duration::from_secs(2)) {
            Ok(resp) if resp.ok => {
                link_failures = 0;
                match resp.epoch {
                    Some(e) if e < my_epoch => {
                        // A replica still serving a term below ours — its
                        // log may contain fenced records. Never apply.
                        std::thread::sleep(idle);
                        continue;
                    }
                    Some(e) if e > my_epoch => {
                        // The leader moved terms; persist the new one
                        // before applying anything shipped under it.
                        if let Err(err) = repl.adopt_epoch(e, Some(addr.clone())) {
                            eprintln!(
                                "rrre-serve: catch-up failed to persist adopted epoch {e}: {err}"
                            );
                            std::thread::sleep(idle);
                            continue;
                        }
                    }
                    _ => {}
                }
                let records = resp.records.unwrap_or_default();
                if records.is_empty() {
                    std::thread::sleep(idle);
                    continue;
                }
                if let Err(e) = apply_replicated(shared, my_count, &records) {
                    eprintln!("rrre-serve: replication catch-up apply failed: {e}");
                    std::thread::sleep(idle);
                }
                // Applied a batch: loop straight back for the next range.
            }
            Ok(resp) => {
                link_failures = 0;
                // `StaleEpoch` with a higher term means *we* were behind
                // (a new leader we had not heard of): adopt it so the next
                // fetch passes the fence. A lower term means the hint
                // still names a fenced replica — do nothing and wait for
                // the real leader's traffic to refresh the hint. Other
                // refusals (e.g. compacted below our position) just back
                // off.
                if resp.kind == Some(ErrorKind::StaleEpoch) {
                    if let Some(e) = resp.epoch.filter(|&e| e > my_epoch) {
                        if let Err(err) = repl.adopt_epoch(e, None) {
                            eprintln!(
                                "rrre-serve: catch-up failed to persist adopted epoch {e}: {err}"
                            );
                        }
                    }
                }
                std::thread::sleep(idle);
            }
            Err(e) => {
                replication::log_link_failure(&mut link_failures, "catch-up", &addr, &e);
                std::thread::sleep(idle);
            }
        }
    }
}

/// Outer supervision shell: respawns the worker loop if it ever panics
/// outside the per-job guard (queue bookkeeping, batch accounting). A clean
/// return means the queue disconnected — normal shutdown.
fn supervised_worker(shared: &Shared, queue: &BatchQueue) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, queue))) {
            Ok(()) => break,
            Err(_) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                shared.record_panic();
                std::thread::sleep(shared.cfg.panic_backoff);
            }
        }
    }
}

fn worker_loop(shared: &Shared, queue: &BatchQueue) {
    while let Some(batch) = queue.next_batch() {
        shared.stats.record_batch(batch.len());
        let mut panicked = false;
        for mut job in batch {
            // Pin the generation per job: a reload mid-batch must not mix
            // weights between jobs, let alone within one.
            let generation = shared.generation();
            let response =
                match catch_unwind(AssertUnwindSafe(|| process(shared, &generation, &job))) {
                    Ok(response) => response,
                    Err(_) => {
                        panicked = true;
                        shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                        shared.record_panic();
                        Response::internal(
                            job.request.id,
                            "worker panicked while processing this request",
                        )
                    }
                };
            shared.stats.latency.record(job.enqueued.elapsed());
            if !response.ok {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            // Release the queue slot *before* replying: a client that has
            // seen its response must be able to resubmit immediately
            // without racing the permit drop for its own old slot.
            drop(job.permit.take());
            job.reply.complete(response);
        }
        if panicked {
            std::thread::sleep(shared.cfg.panic_backoff);
        }
    }
}

/// The cached frozen prediction: tower representations through the
/// generation's caches, heads recomputed (they depend on nothing cacheable
/// but the pair).
fn predict_pair(stats: &EngineStats, generation: &Generation, user: u32, item: u32) -> Prediction {
    let model = &generation.artifact.model;
    let (u, i) = (UserId(user), ItemId(item));
    let x_u = generation.user_cache.get_or_compute(user, item, || {
        stats.tower_evals.fetch_add(1, Ordering::Relaxed);
        model.infer_user_tower(u, i)
    });
    let y_i = generation.item_cache.get_or_compute(user, item, || {
        stats.tower_evals.fetch_add(1, Ordering::Relaxed);
        model.infer_item_tower(u, i)
    });
    let pred = model.infer_heads(u, i, &x_u, &y_i);
    match generation.prior {
        // Thin pairs (either side below the evidence threshold) get the
        // calibrated cold-start reliability instead of a head score the
        // model had almost no reviews to ground; the rating passes
        // through. Degrees come from the model's live index, which the
        // incremental refresh keeps current.
        Some(prior) => {
            let index = model.index();
            prior.gate(pred, index.user_degree(u), index.item_degree(i))
        }
        None => pred,
    }
}

fn require(field: Option<u32>, name: &str, bound: usize) -> Result<u32, String> {
    let v = field.ok_or_else(|| format!("missing required field `{name}`"))?;
    if (v as usize) < bound {
        Ok(v)
    } else {
        Err(format!("{name} {v} out of range (dataset has {bound})"))
    }
}

fn bad_request(id: Option<u64>, message: impl Into<String>) -> Response {
    Response::error_kind(id, ErrorKind::BadRequest, message)
}

/// Blocks an ingest ack on quorum durability of `target`, mapping each
/// failure to its structured refusal. A timeout is `Unavailable` — the
/// honest retryable: the record *is* durable here, and the retry's
/// duplicate path re-proves quorum.
fn await_quorum(id: Option<u64>, repl: &Replication, target: u64) -> Result<(), Response> {
    match repl.quorum_wait(target) {
        Ok(()) => Ok(()),
        Err(QuorumError::Deposed(hint)) => Err(Response::not_leader(id, hint)),
        Err(QuorumError::Timeout) => Err(Response::unavailable(
            id,
            "replication quorum not reached before the timeout; the record is durable on the \
             leader — retry with the same seq",
        )),
    }
}

/// Ownership gate for shard-scoped engines: `Err` carries the structured
/// `WrongShard` refusal (owner + map version, so a stale client can tell a
/// misroute from a topology change) when `item` belongs to another shard.
/// Whole-model engines (`shard_id: None`) own everything.
fn check_owned(
    shared: &Shared,
    generation: &Generation,
    id: Option<u64>,
    item: u32,
) -> Result<(), Response> {
    if let Some(shard) = shared.cfg.shard_id {
        let owner = generation.shard_map.shard_of_item(item);
        if owner != shard {
            shared.stats.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(Response::wrong_shard(id, owner, generation.shard_map.version()));
        }
    }
    Ok(())
}

fn process(shared: &Shared, generation: &Generation, job: &Job) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = &job.request;

    if let Some(deadline_ms) = req.deadline_ms {
        // `>=` so a zero deadline is expired by definition — tests can
        // exercise the miss path without sleeping to outrun the clock.
        if job.enqueued.elapsed() >= Duration::from_millis(deadline_ms) {
            shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            return Response::error_kind(
                req.id,
                ErrorKind::DeadlineExceeded,
                "deadline exceeded while queued",
            );
        }
    }

    let ds = &generation.artifact.dataset;
    let mut response = match req.op {
        Op::Predict => {
            let (user, item) = match (
                require(req.user, "user", ds.n_users),
                require(req.item, "item", ds.n_items),
            ) {
                (Ok(u), Ok(i)) => (u, i),
                (Err(e), _) | (_, Err(e)) => return bad_request(req.id, e),
            };
            if let Err(resp) = check_owned(shared, generation, req.id, item) {
                return resp;
            }
            let mut resp = Response::ok(req.id);
            resp.prediction = Some(predict_pair(&shared.stats, generation, user, item).into());
            resp
        }
        Op::Recommend => {
            let user = match require(req.user, "user", ds.n_users) {
                Ok(u) => u,
                Err(e) => return bad_request(req.id, e),
            };
            let k = match req.k {
                Some(k) if k > 0 => k,
                _ => return bad_request(req.id, "missing or zero field `k`"),
            };
            // A shard-scoped engine scores only the catalog slice it owns —
            // its side of a scatter-gather fan-out. The gather side re-runs
            // the same two-stage ordering over the union of slices, which
            // reproduces the whole-model answer bit for bit.
            if shared.cfg.shard_id.is_some() {
                shared.stats.scatter_fanout.fetch_add(1, Ordering::Relaxed);
            }
            let mut scored: Vec<(ItemId, Prediction)> = (0..ds.n_items as u32)
                .filter(|&i| {
                    shared.cfg.shard_id.map_or(true, |s| generation.shard_map.owns_item(s, i))
                })
                .map(|i| (ItemId(i), predict_pair(&shared.stats, generation, user, i)))
                .collect();
            rank_candidates(&mut scored, k);
            let mut resp = Response::ok(req.id);
            resp.recommendations = Some(
                scored
                    .into_iter()
                    .map(|(item, p)| crate::protocol::RecommendationDto {
                        item: item.0,
                        item_name: ds.item_name(item),
                        rating: p.rating,
                        reliability: p.reliability,
                    })
                    .collect(),
            );
            resp
        }
        Op::Explain => {
            let item = match require(req.item, "item", ds.n_items) {
                Ok(i) => i,
                Err(e) => return bad_request(req.id, e),
            };
            if let Err(resp) = check_owned(shared, generation, req.id, item) {
                return resp;
            }
            let k = match req.k {
                Some(k) if k > 0 => k,
                _ => return bad_request(req.id, "missing or zero field `k`"),
            };
            let mut scored: Vec<(usize, Prediction)> = generation
                .artifact
                .index
                .item_reviews(ItemId(item))
                .iter()
                .map(|&ri| {
                    let r = &ds.reviews[ri];
                    (ri, predict_pair(&shared.stats, generation, r.user.0, r.item.0))
                })
                .collect();
            rank_candidates(&mut scored, k);
            let mut resp = Response::ok(req.id);
            resp.explanations = Some(
                scored
                    .into_iter()
                    .map(|(ri, p)| {
                        let r = &ds.reviews[ri];
                        crate::protocol::ExplanationDto {
                            review_idx: ri,
                            user: r.user.0,
                            user_name: ds.user_name(r.user),
                            text: r.text.clone(),
                            rating: p.rating,
                            reliability: p.reliability,
                            filtered: p.reliability < EXPLANATION_RELIABILITY_THRESHOLD,
                        }
                    })
                    .collect(),
            );
            resp
        }
        Op::Stats => {
            let mut resp = Response::ok(req.id);
            resp.stats = Some(snapshot(shared));
            resp
        }
        Op::Health => {
            // Normally intercepted in `submit` before queueing; answered
            // here too so a directly-processed job is never unreachable.
            let breaker_open = shared.breaker_open();
            let draining = shared.draining.load(Ordering::SeqCst);
            let mut resp = Response::ok(req.id);
            resp.health = Some(HealthDto {
                live: true,
                ready: !draining && !breaker_open,
                draining,
                breaker_open,
                generation: generation.id,
            });
            resp
        }
        Op::Invalidate => {
            if req.user.is_none() && req.item.is_none() {
                return bad_request(req.id, "Invalidate needs `user` and/or `item`");
            }
            // Item eviction is owner-scoped like any item op; user-only
            // eviction runs anywhere (every shard may cache that user's
            // tower for its own items, so clients broadcast it).
            if let Some(item) = req.item {
                if let Err(resp) = check_owned(shared, generation, req.id, item) {
                    return resp;
                }
            }
            let mut evicted = 0usize;
            if let Some(u) = req.user {
                evicted += generation.user_cache.invalidate(u);
            }
            if let Some(i) = req.item {
                evicted += generation.item_cache.invalidate(i);
            }
            let mut resp = Response::ok(req.id);
            resp.evicted = Some(evicted as u64);
            resp
        }
        Op::Reload => match do_reload(shared) {
            Ok(new_id) => {
                let mut resp = Response::ok(req.id);
                resp.generation = Some(new_id);
                return resp;
            }
            Err(e) => return Response::internal(req.id, e),
        },
        Op::IngestReview => {
            let Some(state) = shared.ingest.as_ref() else {
                return bad_request(
                    req.id,
                    "IngestReview needs an ingest-enabled engine (open_with_ingest)",
                );
            };
            // Replication fencing before any validation: a stale-term
            // client is refused outright, and only the acting leader ever
            // accepts a write (a follower redirects, a deposed leader
            // must never ack something the new term's quorum lacks).
            if let Some(repl) = shared.repl.as_deref() {
                let current = repl.current_epoch();
                if let Some(epoch) = req.epoch {
                    if epoch < current {
                        shared.stats.stale_epoch_rejections.fetch_add(1, Ordering::Relaxed);
                        return Response::stale_epoch(req.id, epoch, current);
                    }
                }
                if !repl.is_leader() {
                    return Response::not_leader(req.id, repl.leader_hint());
                }
            }
            let Some(seq) = req.seq else {
                return bad_request(req.id, "missing required field `seq`");
            };
            // Ingest stays inside the artifact's id space: the embedding
            // tables are sized at training time, so a brand-new entity
            // needs a retrain, not a WAL append.
            let (user, item) = match (
                require(req.user, "user", ds.n_users),
                require(req.item, "item", ds.n_items),
            ) {
                (Ok(u), Ok(i)) => (u, i),
                (Err(e), _) | (_, Err(e)) => return bad_request(req.id, e),
            };
            if let Err(resp) = check_owned(shared, generation, req.id, item) {
                return resp;
            }
            let rating = match req.rating {
                Some(r) if (1.0..=5.0).contains(&r) => r,
                Some(r) => return bad_request(req.id, format!("rating {r} outside [1, 5]")),
                None => return bad_request(req.id, "missing required field `rating`"),
            };
            let rec = WalRecord {
                seq,
                user,
                item,
                rating,
                ts: req.ts.unwrap_or(0),
                text: req.text.clone().unwrap_or_default(),
            };
            let mut inner = state.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.accepted.contains(seq) {
                // Exactly-once: this seq was durably accepted before (the
                // ack may have been lost to a crash or timeout). Ack again
                // without re-applying anything — but at quorum ack level,
                // re-prove quorum durability of everything up to the
                // current count first: the original attempt may have timed
                // out precisely because followers were behind.
                shared.stats.ingest_duplicates.fetch_add(1, Ordering::Relaxed);
                let quorum_target =
                    shared.repl.as_deref().map(|repl| repl.lock().count());
                drop(inner);
                if let (Some(repl), Some(target)) =
                    (shared.repl.as_deref(), quorum_target)
                {
                    if repl.ack == AckLevel::Quorum {
                        if let Err(resp) = await_quorum(req.id, repl, target) {
                            return resp;
                        }
                    }
                }
                let mut resp = Response::ok(req.id);
                resp.ingest = Some(crate::protocol::IngestDto { seq, duplicate: true });
                resp
            } else {
                match inner.wal.append(&rec) {
                    Err(e) => {
                        // No ack without durability: the bytes may or may
                        // not have reached the platter, so the client must
                        // retry with the same seq and let dedup decide.
                        return Response::internal(
                            req.id,
                            format!("wal append failed: {e}; retry with the same seq"),
                        );
                    }
                    Ok(bytes) => {
                        shared.stats.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
                        shared.stats.ingested.fetch_add(1, Ordering::Relaxed);
                        inner.accepted.insert(seq);
                        // Push onto the replication log while still holding
                        // the ingest lock (lock order `inner` → repl), so
                        // log positions follow WAL append order exactly.
                        let quorum_target = shared.repl.as_deref().map(|repl| {
                            let mut rinner = repl.lock();
                            rinner.log.push(rec.clone());
                            rinner.count()
                        });
                        inner.unfolded.push(rec);
                        let pending = inner.unfolded.len() - inner.refreshed;
                        drop(inner);
                        if let Some(repl) = shared.repl.as_deref() {
                            // Wake the shippers for the fresh position.
                            repl.notify();
                        }
                        if state.cfg.refresh_every > 0 && pending >= state.cfg.refresh_every {
                            // Durability is already decided; a refresh
                            // failure must not retract the ack. The records
                            // stay pending for the next refresh/compaction.
                            if let Err(e) = do_refresh(shared) {
                                eprintln!("rrre-serve: deferred ingest refresh failed: {e}");
                            }
                        }
                        if let (Some(repl), Some(target)) =
                            (shared.repl.as_deref(), quorum_target)
                        {
                            if repl.ack == AckLevel::Quorum {
                                if let Err(resp) = await_quorum(req.id, repl, target) {
                                    return resp;
                                }
                            }
                        }
                        let mut resp = Response::ok(req.id);
                        resp.ingest =
                            Some(crate::protocol::IngestDto { seq, duplicate: false });
                        resp
                    }
                }
            }
        }
        Op::Compact => match do_compact(shared) {
            Ok((folded, new_generation)) => {
                let mut resp = Response::ok(req.id);
                resp.compaction = Some(crate::protocol::CompactionDto {
                    folded,
                    generation: new_generation,
                });
                // Stamp the *post*-compaction generation: the one this job
                // pinned is already obsolete.
                resp.generation = Some(new_generation);
                if let Some(shard) = shared.cfg.shard_id {
                    resp.shard = Some(shard);
                    resp.map_version = Some(generation.shard_map.version());
                }
                return resp;
            }
            Err(e) => return Response::internal(req.id, e),
        },
        Op::Replicate => {
            let Some(repl) = shared.repl.as_deref() else {
                return bad_request(
                    req.id,
                    "Replicate needs a replication-enabled engine (open_replicated)",
                );
            };
            let Some(epoch) = req.epoch else {
                return bad_request(req.id, "missing required field `epoch`");
            };
            let current = repl.current_epoch();
            if epoch < current {
                shared.stats.stale_epoch_rejections.fetch_add(1, Ordering::Relaxed);
                return Response::stale_epoch(req.id, epoch, current);
            }
            // peers[0] is the shipping leader's advertised address — the
            // redirect hint this follower hands to misrouted clients.
            let hint = req.peers.as_ref().and_then(|p| p.first().cloned());
            if epoch > current {
                // A higher term on the wire deposes any local leadership
                // and is persisted before a single record is applied.
                if let Err(e) = repl.adopt_epoch(epoch, hint) {
                    return Response::internal(
                        req.id,
                        format!("failed to persist adopted epoch {epoch}: {e}"),
                    );
                }
            } else {
                if repl.is_leader() {
                    // Two leaders sharing a term is a protocol violation,
                    // not something to paper over.
                    return Response::internal(
                        req.id,
                        format!("Replicate at epoch {epoch} reached the acting leader of that term"),
                    );
                }
                if let Some(hint) = hint {
                    repl.lock().leader_hint = Some(hint);
                }
            }
            let Some(from) = req.from else {
                return bad_request(req.id, "missing required field `from`");
            };
            let records = req.records.as_deref().unwrap_or(&[]);
            match apply_replicated(shared, from, records) {
                Ok(count) => {
                    let mut resp = Response::ok(req.id);
                    resp.replicated = Some(count);
                    resp.epoch = Some(repl.current_epoch());
                    return resp;
                }
                Err(e) => return Response::internal(req.id, e),
            }
        }
        Op::FetchWal => {
            let Some(repl) = shared.repl.as_deref() else {
                return bad_request(
                    req.id,
                    "FetchWal needs a replication-enabled engine (open_replicated)",
                );
            };
            // Fence the catch-up path in both directions. A requester
            // carrying a *higher* term proves this replica was fenced — a
            // deposed leader's log may hold records the new term never
            // committed, and serving them would replicate that divergence
            // into the follower. Adopt the higher term (persisting it, and
            // deposing any local leadership) and refuse; the response
            // carries the term we were fenced at so the caller can see how
            // stale we were. A requester *behind* our term is refused the
            // standard way, learning the current term from the response.
            if let Some(req_epoch) = req.epoch {
                let current = repl.current_epoch();
                if req_epoch > current {
                    shared.stats.stale_epoch_rejections.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = repl.adopt_epoch(req_epoch, None) {
                        return Response::internal(
                            req.id,
                            format!("failed to persist adopted epoch {req_epoch}: {e}"),
                        );
                    }
                    let mut resp = Response::stale_epoch(req.id, current, req_epoch);
                    // Override the constructor's "current term" stamp: the
                    // stale party here is *us*, and the requester must see
                    // the term this log was last written under.
                    resp.epoch = Some(current);
                    return resp;
                }
                if req_epoch < current {
                    shared.stats.stale_epoch_rejections.fetch_add(1, Ordering::Relaxed);
                    return Response::stale_epoch(req.id, req_epoch, current);
                }
            }
            let Some(from) = req.from else {
                return bad_request(req.id, "missing required field `from`");
            };
            let limit = req.limit.unwrap_or(16).clamp(1, 16) as usize;
            let rinner = repl.lock();
            if from < rinner.base {
                return bad_request(
                    req.id,
                    format!(
                        "position {from} was compacted below the log base {}; a full artifact \
                         resync is required",
                        rinner.base
                    ),
                );
            }
            let start = (from - rinner.base) as usize;
            let records: Vec<ReplRecordDto> = rinner
                .log
                .get(start..)
                .unwrap_or(&[])
                .iter()
                .take(limit)
                .map(|r| ReplRecordDto::sealed(r.seq, r.user, r.item, r.rating, r.ts, r.text.clone()))
                .collect();
            let (count, epoch) = (rinner.count(), rinner.epoch);
            drop(rinner);
            let mut resp = Response::ok(req.id);
            resp.records = Some(records);
            resp.replicated = Some(count);
            resp.epoch = Some(epoch);
            return resp;
        }
        Op::Promote => {
            let Some(repl) = shared.repl.clone() else {
                return bad_request(
                    req.id,
                    "Promote needs a replication-enabled engine (open_replicated)",
                );
            };
            let Some(epoch) = req.epoch else {
                return bad_request(req.id, "missing required field `epoch`");
            };
            let current = repl.current_epoch();
            // The term must strictly advance — except that re-promoting
            // the *acting* leader at its own term just refreshes the peer
            // set (a follower came back at a new address). A same-term
            // promote on anything else is a split-brain attempt.
            let peer_refresh = epoch == current && repl.is_leader();
            if epoch < current || (epoch == current && !peer_refresh) {
                shared.stats.stale_epoch_rejections.fetch_add(1, Ordering::Relaxed);
                return Response::stale_epoch(req.id, epoch, current);
            }
            let peers = req.peers.clone().unwrap_or_default();
            if let Err(e) = repl.promote(epoch, peers) {
                return Response::internal(
                    req.id,
                    format!("failed to persist promotion to epoch {epoch}: {e}"),
                );
            }
            let mut resp = Response::ok(req.id);
            resp.epoch = Some(epoch);
            return resp;
        }
        Op::Crash => {
            if !shared.cfg.fault_injection {
                return bad_request(
                    req.id,
                    "Crash is a drill verb; enable EngineConfig.fault_injection to use it",
                );
            }
            panic!("deliberate panic requested by the Crash protocol verb");
        }
    };
    response.generation = Some(generation.id);
    // A scoped engine stamps every answer with its shard and the map
    // version it routed under, so gather sides and debugging humans can
    // always tell which slice produced what.
    if let Some(shard) = shared.cfg.shard_id {
        response.shard = Some(shard);
        response.map_version = Some(generation.shard_map.version());
    }
    response
}
