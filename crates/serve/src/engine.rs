//! The request engine: a worker pool over the micro-batch queue.
//!
//! Request flow: `submit` wraps the request in a [`Job`] with a private
//! reply channel and pushes it onto the queue; a worker drains a batch,
//! answers each job, and sends the responses back. Prediction work runs
//! through the tower caches, so a warm pair costs two map lookups and two
//! small head evaluations — the BiLSTM ran once at artifact load and the
//! towers run once per (pair, invalidation epoch).
//!
//! Results are bit-identical to direct `rrre_core` calls: the engine uses
//! the same `infer_user_tower` / `infer_item_tower` / `infer_heads`
//! decomposition that `Rrre::predict` uses internally, and the same
//! [`rrre_core::rank_candidates`] ordering for recommend/explain.

use crate::artifact::ModelArtifact;
use crate::batch::{BatchConfig, BatchQueue, Job};
use crate::cache::{CacheAxis, TowerCache};
use crate::protocol::{Op, Request, Response};
use crate::stats::{EngineStats, StatsSnapshot};
use rrre_core::{rank_candidates, Prediction, EXPLANATION_RELIABILITY_THRESHOLD};
use rrre_data::{ItemId, UserId};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum jobs per micro-batch.
    pub max_batch: usize,
    /// Batch collection window after the first job arrives.
    pub max_wait: Duration,
    /// Lock stripes per tower cache.
    pub cache_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            cache_shards: 16,
        }
    }
}

/// State shared between the engine handle and its workers.
struct Shared {
    artifact: ModelArtifact,
    user_cache: TowerCache,
    item_cache: TowerCache,
    stats: EngineStats,
}

/// A running inference engine. Cheap to share (`&Engine` is `Sync`);
/// dropped or explicitly [`Engine::shutdown`], it drains and joins its
/// workers.
pub struct Engine {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawns the worker pool over a loaded artifact.
    ///
    /// # Panics
    /// Panics if the artifact's model has no frozen cache (loads via
    /// [`ModelArtifact::load`] always do) or `cfg.workers == 0`.
    pub fn new(artifact: ModelArtifact, cfg: EngineConfig) -> Self {
        assert!(cfg.workers >= 1, "Engine: need at least one worker");
        assert!(
            artifact.model.has_frozen_cache(),
            "Engine: artifact model is not frozen for inference"
        );
        let shared = Arc::new(Shared {
            artifact,
            user_cache: TowerCache::new(CacheAxis::User, cfg.cache_shards),
            item_cache: TowerCache::new(CacheAxis::Item, cfg.cache_shards),
            stats: EngineStats::default(),
        });
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: cfg.max_batch,
            max_wait: cfg.max_wait,
        });
        let queue = Arc::new(queue);
        let workers = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("rrre-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Self { shared, tx: Mutex::new(Some(tx)), workers: Mutex::new(workers) }
    }

    /// Submits one request and blocks for its response.
    pub fn submit(&self, request: Request) -> Response {
        let id = request.id;
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent = {
            let guard = self.tx.lock().expect("Engine sender poisoned");
            match guard.as_ref() {
                Some(tx) => tx.send(Job::new(request, reply_tx)).is_ok(),
                None => false,
            }
        };
        if !sent {
            return Response::error(id, "engine is shut down");
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::error(id, "engine dropped the request"))
    }

    /// Parses one protocol line and submits it; parse failures become
    /// error responses rather than dropped connections.
    pub fn submit_line(&self, line: &str) -> Response {
        match crate::protocol::decode_request(line) {
            Ok(req) => self.submit(req),
            Err(e) => Response::error(None, e),
        }
    }

    /// Point-in-time engine counters (also served by `Op::Stats`).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(&self.shared.user_cache, &self.shared.item_cache)
    }

    /// The artifact this engine serves.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.shared.artifact
    }

    /// Graceful shutdown: stop accepting, let queued jobs finish, join the
    /// workers. Idempotent; `Drop` calls it too.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("Engine sender poisoned").take());
        let workers = std::mem::take(&mut *self.workers.lock().expect("Engine workers poisoned"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, queue: &BatchQueue) {
    while let Some(batch) = queue.next_batch() {
        shared.stats.record_batch(batch.len());
        for job in batch {
            let response = process(shared, &job);
            shared.stats.latency.record(job.enqueued.elapsed());
            if !response.ok {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            let _ = job.reply.send(response);
        }
    }
}

/// The cached frozen prediction: tower representations through the caches,
/// heads recomputed (they depend on nothing cacheable but the pair).
fn predict_pair(shared: &Shared, user: u32, item: u32) -> Prediction {
    let model = &shared.artifact.model;
    let (u, i) = (UserId(user), ItemId(item));
    let x_u = shared.user_cache.get_or_compute(user, item, || {
        shared.stats.tower_evals.fetch_add(1, Ordering::Relaxed);
        model.infer_user_tower(u, i)
    });
    let y_i = shared.item_cache.get_or_compute(user, item, || {
        shared.stats.tower_evals.fetch_add(1, Ordering::Relaxed);
        model.infer_item_tower(u, i)
    });
    model.infer_heads(u, i, &x_u, &y_i)
}

fn require(field: Option<u32>, name: &str, bound: usize) -> Result<u32, String> {
    let v = field.ok_or_else(|| format!("missing required field `{name}`"))?;
    if (v as usize) < bound {
        Ok(v)
    } else {
        Err(format!("{name} {v} out of range (dataset has {bound})"))
    }
}

fn process(shared: &Shared, job: &Job) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = &job.request;

    if let Some(deadline_ms) = req.deadline_ms {
        // `>=` so a zero deadline is expired by definition — tests can
        // exercise the miss path without sleeping to outrun the clock.
        if job.enqueued.elapsed() >= Duration::from_millis(deadline_ms) {
            shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            return Response::error(req.id, "deadline exceeded while queued");
        }
    }

    let ds = &shared.artifact.dataset;
    match req.op {
        Op::Predict => {
            let (user, item) = match (
                require(req.user, "user", ds.n_users),
                require(req.item, "item", ds.n_items),
            ) {
                (Ok(u), Ok(i)) => (u, i),
                (Err(e), _) | (_, Err(e)) => return Response::error(req.id, e),
            };
            let mut resp = Response::ok(req.id);
            resp.prediction = Some(predict_pair(shared, user, item).into());
            resp
        }
        Op::Recommend => {
            let user = match require(req.user, "user", ds.n_users) {
                Ok(u) => u,
                Err(e) => return Response::error(req.id, e),
            };
            let k = match req.k {
                Some(k) if k > 0 => k,
                _ => return Response::error(req.id, "missing or zero field `k`"),
            };
            let mut scored: Vec<(ItemId, Prediction)> = (0..ds.n_items)
                .map(|i| (ItemId(i as u32), predict_pair(shared, user, i as u32)))
                .collect();
            rank_candidates(&mut scored, k);
            let mut resp = Response::ok(req.id);
            resp.recommendations = Some(
                scored
                    .into_iter()
                    .map(|(item, p)| crate::protocol::RecommendationDto {
                        item: item.0,
                        item_name: ds.item_name(item),
                        rating: p.rating,
                        reliability: p.reliability,
                    })
                    .collect(),
            );
            resp
        }
        Op::Explain => {
            let item = match require(req.item, "item", ds.n_items) {
                Ok(i) => i,
                Err(e) => return Response::error(req.id, e),
            };
            let k = match req.k {
                Some(k) if k > 0 => k,
                _ => return Response::error(req.id, "missing or zero field `k`"),
            };
            let mut scored: Vec<(usize, Prediction)> = shared
                .artifact
                .index
                .item_reviews(ItemId(item))
                .iter()
                .map(|&ri| {
                    let r = &ds.reviews[ri];
                    (ri, predict_pair(shared, r.user.0, r.item.0))
                })
                .collect();
            rank_candidates(&mut scored, k);
            let mut resp = Response::ok(req.id);
            resp.explanations = Some(
                scored
                    .into_iter()
                    .map(|(ri, p)| {
                        let r = &ds.reviews[ri];
                        crate::protocol::ExplanationDto {
                            review_idx: ri,
                            user: r.user.0,
                            user_name: ds.user_name(r.user),
                            text: r.text.clone(),
                            rating: p.rating,
                            reliability: p.reliability,
                            filtered: p.reliability < EXPLANATION_RELIABILITY_THRESHOLD,
                        }
                    })
                    .collect(),
            );
            resp
        }
        Op::Stats => {
            let mut resp = Response::ok(req.id);
            resp.stats = Some(shared.stats.snapshot(&shared.user_cache, &shared.item_cache));
            resp
        }
        Op::Invalidate => {
            if req.user.is_none() && req.item.is_none() {
                return Response::error(req.id, "Invalidate needs `user` and/or `item`");
            }
            let mut evicted = 0usize;
            if let Some(u) = req.user {
                evicted += shared.user_cache.invalidate(u);
            }
            if let Some(i) = req.item {
                evicted += shared.item_cache.invalidate(i);
            }
            let mut resp = Response::ok(req.id);
            resp.evicted = Some(evicted as u64);
            resp
        }
    }
}
