//! Incremental NDJSON frame decoding.
//!
//! The event loop reads whatever the socket has — which may be half a
//! frame, three frames and a prefix, or one byte — and feeds it here. The
//! decoder splits the stream on `\n` into frames **byte-identically to
//! whole-buffer parsing**: concatenating the chunks and splitting on
//! newlines yields exactly the frames this decoder emits, no matter where
//! the chunk boundaries fall.
//!
//! The line bound is enforced incrementally: the moment a frame's buffered
//! prefix exceeds [`crate::protocol::MAX_LINE_BYTES`], the decoder emits
//! one structured [`FrameError::Oversized`] and switches to discard mode,
//! dropping bytes (never buffering them) until the terminating newline.
//! Memory per connection is therefore bounded by `max_line + 1` regardless
//! of what the peer sends. A frame of exactly `max_line` bytes is legal —
//! the bound is exclusive, matching the old server's `take(limit + 1)`
//! sentinel-byte read.

use std::collections::VecDeque;

/// One decoded event: a complete frame, or the structured refusal for an
/// oversized one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// One complete frame — the bytes of a line, **without** the trailing
    /// `\n` (and without any `\r`-stripping: the protocol is `\n`-framed).
    Frame(Vec<u8>),
    /// A frame exceeded the line bound. Emitted exactly once per oversized
    /// line, at the moment the bound is crossed; the rest of the line is
    /// discarded without being buffered.
    Oversized(FrameError),
}

/// The structured error for a frame past the line bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError {
    /// The exclusive byte bound the frame exceeded.
    pub limit: usize,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Must keep naming the limit: protocol_robustness asserts the
        // refusal carries the number so clients can size their lines.
        write!(f, "request line exceeds {} bytes", self.limit)
    }
}

impl std::error::Error for FrameError {}

/// Splits a byte stream into newline-delimited frames, incrementally and
/// with bounded buffering. See the module docs for the exact semantics.
#[derive(Debug)]
pub struct FrameDecoder {
    max_line: usize,
    /// The incomplete frame's prefix (≤ `max_line + 1` bytes — the +1 is
    /// the sentinel that distinguishes "exactly at the bound" from "past
    /// it" without a flag).
    partial: Vec<u8>,
    /// Inside an oversized line: drop bytes until the next `\n`.
    discarding: bool,
    /// Decoded-but-unclaimed events.
    ready: VecDeque<FrameEvent>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_line` (exclusive) bytes per frame.
    pub fn new(max_line: usize) -> Self {
        assert!(max_line >= 1, "FrameDecoder: max_line must be ≥ 1");
        Self { max_line, partial: Vec::new(), discarding: false, ready: VecDeque::new() }
    }

    /// Feeds one chunk of received bytes. Completed frames become claimable
    /// via [`FrameDecoder::next_event`].
    pub fn push(&mut self, mut chunk: &[u8]) {
        while !chunk.is_empty() {
            if self.discarding {
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        self.discarding = false;
                        chunk = &chunk[nl + 1..];
                    }
                    None => return, // the whole chunk is mid-discard noise
                }
                continue;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let mut frame = std::mem::take(&mut self.partial);
                    frame.extend_from_slice(&chunk[..nl]);
                    chunk = &chunk[nl + 1..];
                    if frame.len() > self.max_line {
                        self.ready.push_back(FrameEvent::Oversized(FrameError {
                            limit: self.max_line,
                        }));
                    } else {
                        self.ready.push_back(FrameEvent::Frame(frame));
                    }
                }
                None => {
                    // No delimiter: buffer, bounded. Crossing the limit
                    // emits the error *now* and stops buffering — the
                    // remainder of this line is discarded as it arrives.
                    let take = chunk.len().min((self.max_line + 1).saturating_sub(self.partial.len()));
                    self.partial.extend_from_slice(&chunk[..take]);
                    if self.partial.len() > self.max_line {
                        self.partial.clear();
                        self.discarding = true;
                        self.ready.push_back(FrameEvent::Oversized(FrameError {
                            limit: self.max_line,
                        }));
                        chunk = &chunk[take..];
                        continue;
                    }
                    return;
                }
            }
        }
    }

    /// Claims the next decoded event, if any.
    pub fn next_event(&mut self) -> Option<FrameEvent> {
        self.ready.pop_front()
    }

    /// Whether an incomplete frame is buffered (slow-loris detection and
    /// the `frames_partial` counter).
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty() || self.discarding
    }

    /// Decoded events not yet claimed with [`FrameDecoder::next_event`]
    /// (nonzero while backpressure pauses a connection's claim loop).
    pub fn pending_events(&self) -> usize {
        self.ready.len()
    }

    /// EOF: the unterminated tail, if there is one, as a final frame (the
    /// old server answered a mid-line disconnect with a best-effort
    /// response rather than a silent close). An oversized unterminated
    /// tail already produced its error event in `push` and yields nothing
    /// here. Idempotent — the tail is taken.
    pub fn finish(&mut self) -> Option<FrameEvent> {
        self.discarding = false;
        if self.partial.is_empty() {
            return None;
        }
        Some(FrameEvent::Frame(std::mem::take(&mut self.partial)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(decoder: &mut FrameDecoder) -> Vec<FrameEvent> {
        std::iter::from_fn(|| decoder.next_event()).collect()
    }

    #[test]
    fn whole_buffer_and_split_buffer_agree() {
        let stream = b"{\"op\":\"Stats\"}\n\n{\"op\":\"Health\"}\npartial";
        let mut whole = FrameDecoder::new(64);
        whole.push(stream);
        let mut split = FrameDecoder::new(64);
        for b in stream.iter() {
            split.push(std::slice::from_ref(b));
        }
        assert_eq!(frames(&mut whole), frames(&mut split));
        assert_eq!(whole.finish(), Some(FrameEvent::Frame(b"partial".to_vec())));
        assert_eq!(split.finish(), Some(FrameEvent::Frame(b"partial".to_vec())));
    }

    #[test]
    fn exactly_at_the_bound_is_legal_one_past_is_not() {
        let mut d = FrameDecoder::new(4);
        d.push(b"abcd\n");
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(b"abcd".to_vec())));
        d.push(b"abcde\n");
        assert_eq!(d.next_event(), Some(FrameEvent::Oversized(FrameError { limit: 4 })));
        assert_eq!(d.next_event(), None);
    }

    #[test]
    fn oversized_line_is_reported_once_and_never_buffered() {
        let mut d = FrameDecoder::new(4);
        // 1 MiB of garbage in small chunks: one error, bounded memory.
        for _ in 0..4096 {
            d.push(&[b'x'; 256]);
        }
        assert!(d.partial.len() <= 5, "discard mode must not buffer");
        assert_eq!(d.next_event(), Some(FrameEvent::Oversized(FrameError { limit: 4 })));
        assert_eq!(d.next_event(), None);
        // The newline ends the discard; the connection speaks again.
        d.push(b"\nok\n");
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(b"ok".to_vec())));
    }

    #[test]
    fn finish_yields_the_unterminated_tail_once() {
        let mut d = FrameDecoder::new(16);
        d.push(b"tail");
        assert!(d.has_partial());
        assert_eq!(d.finish(), Some(FrameEvent::Frame(b"tail".to_vec())));
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn oversized_unterminated_tail_yields_no_extra_frame_at_eof() {
        let mut d = FrameDecoder::new(4);
        d.push(b"abcdefgh");
        assert_eq!(d.next_event(), Some(FrameEvent::Oversized(FrameError { limit: 4 })));
        assert_eq!(d.finish(), None);
    }
}
