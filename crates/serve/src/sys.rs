//! Raw Linux syscall bindings for the event loop: `epoll` and `writev`.
//!
//! The workspace vendors no external crates, so these are hand-declared
//! `extern "C"` bindings to the system libc that every Rust binary on
//! Linux already links. Only what the event loop needs is bound — four
//! calls and a handful of constants — wrapped in safe types immediately
//! below so no other module touches a raw fd flag.

#![cfg(target_os = "linux")]

use std::ffi::c_void;
use std::io;
use std::os::fd::RawFd;

/// `epoll_event.events` bit: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` bit: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` bit: error condition (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` bit: hangup (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` bit: the peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32- and 64-bit layouts agree); natural alignment
/// everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-bit mask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub token: u64,
}

/// The kernel's `struct iovec` for vectored writes.
#[repr(C)]
struct IoVec {
    base: *const c_void,
    len: usize,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Interest is registered per fd with an opaque
/// `u64` token that [`Epoll::wait`] hands back with each readiness event.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest bits under `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Replaces the interest bits for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, token: 0 };
        // A non-null event pointer keeps pre-2.6.9 kernel semantics happy.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness events,
    /// filling `events` and returning how many are valid. `EINTR` is
    /// retried internally — a stray signal must not count as a timeout.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid, writable slice for the call.
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

/// Writes as much of `bufs` as the socket accepts in **one** `writev`
/// call, returning the bytes written (0 on `EWOULDBLOCK`). At most 64
/// iovecs per call — the response queue behind it simply flushes again on
/// the next writable event.
pub fn writev_once(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    const MAX_IOV: usize = 64;
    let iov: Vec<IoVec> = bufs
        .iter()
        .take(MAX_IOV)
        .map(|b| IoVec { base: b.as_ptr() as *const c_void, len: b.len() })
        .collect();
    if iov.is_empty() {
        return Ok(0);
    }
    loop {
        // SAFETY: every iovec points into a live borrowed slice.
        let n = unsafe { writev(fd, iov.as_ptr(), iov.len() as i32) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        match err.kind() {
            io::ErrorKind::Interrupted => continue,
            io::ErrorKind::WouldBlock => return Ok(0),
            _ => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(a.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, token: 0 }; 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "nothing readable yet");
        use std::io::Write;
        (&b).write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = events[0].token;
        assert_eq!(token, 42);
        let mut byte = [0u8; 1];
        a.read_exact(&mut byte).unwrap();
        ep.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn writev_once_coalesces_buffers() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        let n = writev_once(a.as_raw_fd(), &[b"hel", b"lo ", b"world"]).unwrap();
        assert_eq!(n, 11);
        let mut got = [0u8; 11];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
    }
}
