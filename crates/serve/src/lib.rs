//! # rrre-serve
//!
//! Inference serving for the RRRE model — the deployment story the paper's
//! §III-B recommendation procedure implies but never spells out. Four layers,
//! bottom to top:
//!
//! * [`artifact`] — [`ModelArtifact`]: a self-describing on-disk bundle
//!   (manifest + dataset + word vectors + `RRRP` weights) that restores a
//!   trained model with [`rrre_core::Rrre::from_checkpoint`], validating
//!   every shape on the way in.
//! * [`cache`] — [`TowerCache`]: sharded, lock-striped caches of the
//!   pair-dependent UserNet/ItemNet representations, with explicit
//!   invalidation when an entity gains a review. A warm prediction is two
//!   cache lookups plus the two cheap heads; the BiLSTM never runs on the
//!   hot path.
//! * [`engine`] — [`Engine`]: a worker pool fed by a micro-batching queue
//!   ([`batch::BatchQueue`]) that serves predict / recommend / explain with
//!   per-request deadlines, engine-wide counters ([`stats`]) and graceful
//!   shutdown.
//! * [`protocol`] + [`server`] — newline-delimited JSON over TCP (and a
//!   single-shot CLI in `src/bin/serve.rs`): one request per line, one
//!   response per line, stable across process restarts because ranking ties
//!   break deterministically ([`rrre_core::rank_candidates`]).
//!
//! The TCP front end is a readiness-driven event core: one epoll thread
//! ([`sys`]) multiplexes every connection, decoding frames incrementally
//! ([`frame`]), pipelining requests per connection ([`conn`]), reaping
//! idle sockets with a timer wheel ([`timer`]), and flushing responses
//! with `writev`. Workers answer through completion callbacks
//! ([`batch::Completion`]) instead of parked threads.
//!
//! The engine reproduces `rrre_core` predictions *bit for bit*: it calls the
//! same decomposed inference path (`infer_user_tower` / `infer_item_tower` /
//! `infer_heads`) that `Rrre::predict` itself uses in frozen mode.

#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod cache;
pub mod conn;
pub mod engine;
mod event_loop;
pub mod frame;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod stats;
pub mod sys;
pub mod timer;
pub mod wal;

pub use artifact::{ArtifactManifest, FileChecksum, ModelArtifact};
pub use batch::Completion;
pub use cache::{CacheAxis, TowerCache};
pub use engine::{Engine, EngineConfig, Generation, IngestConfig, WAL_DIR};
pub use frame::{FrameDecoder, FrameError, FrameEvent};
pub use protocol::{ErrorKind, HealthDto, Op, Request, Response};
pub use replication::{AckLevel, QuorumError, ReplRole, Replication, ReplicationConfig};
pub use server::{Server, ServerConfig};
pub use stats::{EngineStats, FrontendStats, StatsSnapshot};
pub use wal::{FsyncPolicy, IngestLedger, SeqSet, WalError, WalRecord, WalWriter};
