//! The TCP front end: newline-delimited JSON over `std::net`.
//!
//! One accept thread hands each connection to its own thread; a connection
//! reads request lines, routes them through [`Engine::submit_line`], and
//! writes one response line per request. Responses on one connection come
//! back in request order (the per-request reply channel blocks the
//! connection thread), so clients may pipeline without correlation ids —
//! ids are still echoed for clients that want them.
//!
//! Shutdown: [`Server::stop`] flips a flag and pokes the listener with a
//! self-connection so the accept loop observes it, then joins the accept
//! thread. In-flight connections notice on their next read/write error.

use crate::engine::Engine;
use crate::protocol::{encode_response, Response, MAX_LINE_BYTES};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("rrre-serve-accept".into())
                .spawn(move || accept_loop(&listener, &engine, &stop))?
        };
        Ok(Self { addr, stop, accept: Some(accept) })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so it sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let engine = Arc::clone(engine);
        let _ = std::thread::Builder::new()
            .name("rrre-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &engine);
            });
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Bounded read: never buffer more than MAX_LINE_BYTES (+1 sentinel
        // byte to tell "exactly at the limit" from "past it") per line.
        let n = reader.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            break; // clean EOF between lines
        }
        let complete = buf.last() == Some(&b'\n');
        if !complete && buf.len() > MAX_LINE_BYTES {
            // Oversized line: structured error, then discard the rest of
            // the line so the connection stays usable.
            let resp = Response::error(None, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            write_response(&mut writer, &resp)?;
            drain_line(&mut reader)?;
            continue;
        }
        let text = String::from_utf8_lossy(&buf);
        if text.trim().is_empty() {
            continue;
        }
        // A partial line at EOF (client died or shut down mid-write) still
        // gets a best-effort response — usually a parse error — instead of
        // a silent close.
        let response = engine.submit_line(&text);
        write_response(&mut writer, &response)?;
        if !complete {
            break;
        }
    }
    Ok(())
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    writer.write_all(encode_response(resp).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads and discards up to the end of the current line (or EOF), in
/// bounded chunks so an adversarial mega-line cannot grow server memory.
fn drain_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<()> {
    let mut chunk = Vec::with_capacity(4096);
    loop {
        chunk.clear();
        let n = reader.by_ref().take(4096).read_until(b'\n', &mut chunk)?;
        if n == 0 || chunk.last() == Some(&b'\n') {
            return Ok(());
        }
    }
}
