//! The TCP front end: newline-delimited JSON over `std::net`.
//!
//! A nonblocking accept loop hands each connection to its own thread; a
//! connection reads request lines, routes them through
//! [`Engine::submit_line`], and writes one response line per request.
//! Responses on one connection come back in request order (the per-request
//! reply channel blocks the connection thread), so clients may pipeline
//! without correlation ids — ids are still echoed for clients that want
//! them.
//!
//! Overload and shutdown are both deadline-driven, with no self-connect
//! tricks:
//!
//! * the accept loop polls a nonblocking listener, so it observes the stop
//!   flag within one poll interval no matter how quiet the socket is;
//! * connections past [`ServerConfig::max_connections`] get one structured
//!   `unavailable` response and are closed — the thread count is bounded;
//! * every connection reads with [`ServerConfig::read_timeout`], so idle
//!   connections also observe the stop flag promptly (partial lines
//!   survive timeouts — the buffer is only cleared on a complete line);
//! * [`Server::stop`] is idempotent, flips the flag, and waits up to
//!   [`ServerConfig::drain_deadline`] for in-flight connections to finish
//!   before returning.

use crate::engine::Engine;
use crate::protocol::{encode_response, ErrorKind, Response, MAX_LINE_BYTES};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-end limits and shutdown pacing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served; excess connections receive one
    /// structured `unavailable` response and are closed.
    pub max_connections: usize,
    /// Socket read timeout — the interval at which idle connections check
    /// the stop flag. Short enough for prompt shutdown, long enough to
    /// stay off the syscall hot path.
    pub read_timeout: Duration,
    /// How long [`Server::stop`] waits for in-flight connections to drain
    /// before returning anyway.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            read_timeout: Duration::from_millis(100),
            drain_deadline: Duration::from_secs(2),
        }
    }
}

/// How often the accept loop re-polls a quiet listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running TCP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    /// Kept so [`Server::stop`] can flip the engine's draining flag the
    /// moment shutdown begins — health probes see not-ready while
    /// in-flight connections are still finishing.
    engine: Arc<Engine>,
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// with default [`ServerConfig`] limits.
    pub fn start(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::start_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit limits.
    pub fn start_with(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        assert!(cfg.max_connections >= 1, "Server: max_connections must be ≥ 1");
        assert!(!cfg.read_timeout.is_zero(), "Server: read_timeout must be non-zero");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("rrre-serve-accept".into())
                .spawn(move || accept_loop(&listener, &engine, &stop, cfg))?
        };
        Ok(Self { addr, stop, accept: Some(accept), engine })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits up to the drain deadline for in-flight
    /// connections, and joins the accept thread. Idempotent — repeated
    /// calls (or a call followed by `Drop`) are no-ops.
    pub fn stop(&mut self) {
        self.engine.set_draining(true);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => continue,
        };
        // The listener is nonblocking; accepted sockets inherit flags on
        // some platforms, and the connection loop wants timeout-driven
        // blocking reads.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // One response is one small write; Nagle holding it back pairs
        // with the peer's delayed ACK into a ~40 ms stall per roundtrip.
        stream.set_nodelay(true).ok();
        if active.fetch_add(1, Ordering::AcqRel) >= cfg.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            // One honest refusal beats a silent close: the client learns
            // this is load, not a crash.
            let mut stream = stream;
            let resp = Response::unavailable(None, "server is at its connection cap, retry later");
            let _ = write_response(&mut stream, &resp);
            continue;
        }
        let guard = ConnGuard(Arc::clone(&active));
        let engine = Arc::clone(engine);
        let stop = Arc::clone(stop);
        let spawned = std::thread::Builder::new().name("rrre-serve-conn".into()).spawn(move || {
            let _guard = guard;
            let _ = handle_connection(stream, &engine, &stop, cfg);
        });
        // Spawn failure: the guard moved into the closure that never ran,
        // but the closure is dropped with the error, releasing the slot.
        drop(spawned);
    }
    // Drain: give in-flight connections (which see the stop flag within
    // one read timeout) a bounded window to finish their current requests.
    let deadline = Instant::now() + cfg.drain_deadline;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(ACCEPT_POLL);
    }
}

/// Read errors that do not end the connection: timeouts (the stop-flag
/// polling interval) and `Interrupted` (a signal landed mid-syscall — the
/// read is simply retried; killing the connection for an `EINTR` would
/// drop a healthy client on every stray `SIGCHLD`/profiler tick).
fn is_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    cfg: ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Accumulates one line across timeout-interrupted reads. Cleared only
    // when a line completes (or is discarded as oversized) — a timeout
    // mid-line must not lose the prefix already read.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Bounded read: never buffer more than MAX_LINE_BYTES (+1 sentinel
        // byte to tell "exactly at the limit" from "past it") per line.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(buf.len());
        let n = match reader.by_ref().take(budget as u64).read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(e) if is_retryable(&e) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.last() == Some(&b'\n') {
            let text = String::from_utf8_lossy(&buf);
            if !text.trim().is_empty() {
                let response = engine.submit_line(&text);
                write_response(&mut writer, &response)?;
            }
            buf.clear();
            continue;
        }
        if buf.len() > MAX_LINE_BYTES {
            // Oversized line: structured error, then discard the rest of
            // the line so the connection stays usable.
            let resp = Response::error_kind(
                None,
                ErrorKind::BadRequest,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            );
            write_response(&mut writer, &resp)?;
            drain_line(&mut reader, stop)?;
            buf.clear();
            continue;
        }
        if n == 0 {
            // EOF. A partial line (client died or shut down mid-write)
            // still gets a best-effort response — usually a parse error —
            // instead of a silent close.
            let text = String::from_utf8_lossy(&buf);
            if !text.trim().is_empty() {
                let response = engine.submit_line(&text);
                let _ = write_response(&mut writer, &response);
            }
            break;
        }
        // n > 0 without a delimiter and under the limit: the socket hit
        // EOF mid-line; the next read returns 0 and lands above.
    }
    Ok(())
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    writer.write_all(encode_response(resp).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads and discards up to the end of the current line (or EOF), in
/// bounded chunks so an adversarial mega-line cannot grow server memory.
/// Timeouts re-check the stop flag like the main read loop does.
fn drain_line(reader: &mut BufReader<TcpStream>, stop: &AtomicBool) -> std::io::Result<()> {
    let mut chunk = Vec::with_capacity(4096);
    loop {
        chunk.clear();
        match reader.by_ref().take(4096).read_until(b'\n', &mut chunk) {
            Ok(0) => return Ok(()),
            Ok(_) if chunk.last() == Some(&b'\n') => return Ok(()),
            Ok(_) => {}
            Err(e) if is_retryable(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}
