//! The TCP front end: newline-delimited JSON over an event-driven core.
//!
//! One event-loop thread ([`crate::event_loop`]) owns the listener and
//! every connection, registered with an epoll instance ([`crate::sys`]) —
//! no thread per connection, so the front end scales to thousands of
//! concurrent sockets. Reads are nonblocking into per-connection
//! incremental NDJSON buffers ([`crate::frame::FrameDecoder`]); requests
//! pipeline freely up to [`ServerConfig::max_inflight_per_conn`] per
//! connection; responses are flushed with `writev`, batching queued
//! frames into single syscalls, and leave in **completion** order —
//! pipelining clients match responses to requests by the correlation ids
//! the wire protocol echoes.
//!
//! Overload, backpressure, and shutdown are all explicit:
//!
//! * connections past [`ServerConfig::max_connections`] get one
//!   structured `unavailable` response and are closed;
//! * a connection whose queued output exceeds
//!   [`ServerConfig::write_buffer_cap`], or with its in-flight quota
//!   full, stops being read — the kernel receive buffer fills and TCP
//!   pushes back on the peer, bounding server memory per connection;
//! * idle connections are reaped by a timer wheel ([`crate::timer`])
//!   after [`ServerConfig::idle_timeout`], when one is configured (the
//!   default, `None`, keeps the historical never-reap behavior);
//! * [`Server::stop`] is idempotent: it marks the engine draining, wakes
//!   the loop, stops accepting and reading, and gives queued + in-flight
//!   work up to [`ServerConfig::drain_deadline`] to flush before closing
//!   everything.

use crate::engine::Engine;
use crate::event_loop::{self, Notifier};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end limits and shutdown pacing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served; excess connections receive one
    /// structured `unavailable` response and are closed.
    pub max_connections: usize,
    /// The event loop's poll tick: the upper bound on how long the loop
    /// sleeps with nothing to do, and therefore on how late it can notice
    /// the stop flag if the wakeup pipe ever fails.
    pub read_timeout: Duration,
    /// How long [`Server::stop`] waits for queued and in-flight work to
    /// drain before closing connections anyway.
    pub drain_deadline: Duration,
    /// Reap connections idle (no bytes received) this long. `None` — the
    /// default — never reaps, matching the thread-per-connection core this
    /// one replaced.
    pub idle_timeout: Option<Duration>,
    /// Requests one connection may have in flight before the loop stops
    /// reading it (per-connection pipelining backpressure).
    pub max_inflight_per_conn: usize,
    /// Queued response bytes per connection before the loop stops reading
    /// it (write backpressure for slow readers).
    pub write_buffer_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            read_timeout: Duration::from_millis(100),
            drain_deadline: Duration::from_secs(2),
            idle_timeout: None,
            max_inflight_per_conn: 64,
            write_buffer_cap: 256 * 1024,
        }
    }
}

/// A running TCP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event_loop: Option<JoinHandle<()>>,
    /// Kept so [`Server::stop`] can flip the engine's draining flag the
    /// moment shutdown begins — health probes see not-ready while
    /// in-flight work is still finishing.
    engine: Arc<Engine>,
    /// Wakes the event loop out of `epoll_wait` for shutdown.
    notifier: Arc<Notifier>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// with default [`ServerConfig`] limits.
    pub fn start(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::start_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit limits.
    pub fn start_with(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        assert!(cfg.max_connections >= 1, "Server: max_connections must be ≥ 1");
        assert!(!cfg.read_timeout.is_zero(), "Server: read_timeout must be non-zero");
        assert!(cfg.max_inflight_per_conn >= 1, "Server: max_inflight_per_conn must be ≥ 1");
        assert!(cfg.write_buffer_cap >= 1, "Server: write_buffer_cap must be ≥ 1");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        let notifier = Arc::new(Notifier::new(wake_tx));
        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = {
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&engine);
            let notifier = Arc::clone(&notifier);
            std::thread::Builder::new()
                .name("rrre-serve-loop".into())
                .spawn(move || event_loop::run(listener, engine, stop, cfg, notifier, wake_rx))?
        };
        Ok(Self { addr, stop, event_loop: Some(event_loop), engine, notifier })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits up to the drain deadline for queued and
    /// in-flight work, and joins the loop thread. Idempotent — repeated
    /// calls (or a call followed by `Drop`) are no-ops.
    pub fn stop(&mut self) {
        self.engine.set_draining(true);
        self.stop.store(true, Ordering::SeqCst);
        self.notifier.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
