//! The micro-batching queue between the front end and the worker pool.
//!
//! Workers contend on a single striped point: whoever takes the receiver
//! lock blocks for the next job, greedily drains everything already queued
//! (up to `max_batch`), and only if still alone waits up to `max_wait` for
//! a second job before giving up and serving the singleton. Coalescing is
//! therefore free under load — queued jobs batch without any added wait —
//! while an idle engine delays a lone request by at most one `max_wait`
//! window. The lock is held only while *collecting*: the worker releases
//! it before processing, so the next worker collects the next batch while
//! the first one computes.

use crate::protocol::{Request, Response};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A slot in the bounded submission queue, held for the job's lifetime.
/// Dropping it — on reply, on shed, or mid-unwind if a worker panics with
/// the job in hand — releases the slot, so the depth counter can never
/// leak and wedge the queue shut.
pub struct QueuePermit {
    depth: Arc<AtomicUsize>,
}

impl QueuePermit {
    /// Claims a slot, or returns `None` when `cap` jobs are already queued
    /// (the caller sheds the request).
    pub fn acquire(depth: &Arc<AtomicUsize>, cap: usize) -> Option<Self> {
        if depth.fetch_add(1, Ordering::AcqRel) >= cap {
            depth.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(Self { depth: Arc::clone(depth) })
    }
}

impl Drop for QueuePermit {
    fn drop(&mut self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

enum CompletionKind {
    Channel(Sender<Response>),
    Callback(Box<dyn FnOnce(Response) + Send>),
}

/// Where a job's response goes: a blocking caller's channel
/// ([`crate::Engine::submit`]) or a completion callback
/// ([`crate::Engine::submit_async`] — the event loop's path, which must
/// never park a thread per request).
///
/// A `Completion` is **guaranteed to fire exactly once**: dropping one
/// unfired (a queue torn down mid-shutdown with jobs still aboard)
/// synthesizes a structured `internal` response, so neither a blocked
/// caller nor an event-loop connection can be left waiting forever.
pub struct Completion {
    kind: Option<CompletionKind>,
    /// The request's correlation id, for the synthesized never-fired
    /// response.
    id: Option<u64>,
}

impl Completion {
    /// A completion that sends on `tx` (send failures are ignored — the
    /// client gave up on its half of the channel).
    pub fn channel(tx: Sender<Response>, id: Option<u64>) -> Self {
        Self { kind: Some(CompletionKind::Channel(tx)), id }
    }

    /// A completion that invokes `f` on whichever thread completes the
    /// job (a worker, or the submitting thread for refusals).
    pub fn callback(f: Box<dyn FnOnce(Response) + Send>, id: Option<u64>) -> Self {
        Self { kind: Some(CompletionKind::Callback(f)), id }
    }

    /// Delivers the response.
    pub fn complete(mut self, response: Response) {
        match self.kind.take() {
            Some(CompletionKind::Channel(tx)) => {
                let _ = tx.send(response);
            }
            Some(CompletionKind::Callback(f)) => f(response),
            None => {}
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(kind) = self.kind.take() {
            let response = Response::internal(self.id, "engine dropped the request");
            match kind {
                CompletionKind::Channel(tx) => {
                    let _ = tx.send(response);
                }
                CompletionKind::Callback(f) => f(response),
            }
        }
    }
}

/// One queued request plus the means to answer it.
pub struct Job {
    /// The decoded request.
    pub request: Request,
    /// When the job entered the queue (deadline + latency base).
    pub enqueued: Instant,
    /// Where the response goes.
    pub reply: Completion,
    /// The queue slot this job occupies (absent for unbounded callers).
    pub permit: Option<QueuePermit>,
}

impl Job {
    /// Wraps a request, stamping the enqueue time now.
    pub fn new(request: Request, reply: Completion) -> Self {
        Self { request, enqueued: Instant::now(), reply, permit: None }
    }

    /// Wraps a request that holds a bounded-queue slot.
    pub fn with_permit(request: Request, reply: Completion, permit: QueuePermit) -> Self {
        Self { permit: Some(permit), ..Self::new(request, reply) }
    }
}

/// Batch collection parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum jobs per drained batch.
    pub max_batch: usize,
    /// Maximum time to wait for follow-up jobs after the first.
    pub max_wait: Duration,
}

/// The consumer half of the engine queue. Shared by every worker.
pub struct BatchQueue {
    rx: Mutex<Receiver<Job>>,
    cfg: BatchConfig,
}

impl BatchQueue {
    /// Creates the queue, returning the producer handle and the queue.
    pub fn new(cfg: BatchConfig) -> (Sender<Job>, Self) {
        assert!(cfg.max_batch >= 1, "BatchQueue: max_batch must be ≥ 1");
        let (tx, rx) = mpsc::channel();
        (tx, Self { rx: Mutex::new(rx), cfg })
    }

    /// Blocks for the next batch: one job, everything already queued behind
    /// it (up to `max_batch`), and — only if that leaves a singleton — up
    /// to `max_wait` for one straggler plus whatever arrives with it.
    /// Returns `None` when every producer handle has been dropped — the
    /// shutdown signal.
    pub fn next_batch(&self) -> Option<Vec<Job>> {
        // A poisoned receiver lock only means another worker panicked while
        // collecting; the receiver itself is still valid.
        let rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
        let first = rx.recv().ok()?;
        let mut batch = vec![first];
        // Free coalescing: drain the backlog without waiting.
        while batch.len() < self.cfg.max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // Nothing was queued behind the first job: give followers one
        // bounded window, then serve whatever exists. Never stall a batch
        // that already has company — that trades latency for nothing.
        if batch.len() == 1 && self.cfg.max_batch > 1 && !self.cfg.max_wait.is_zero() {
            match rx.recv_timeout(self.cfg.max_wait) {
                Ok(job) => {
                    batch.push(job);
                    while batch.len() < self.cfg.max_batch {
                        match rx.try_recv() {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                }
                // Timeout: serve the singleton. Disconnected: serve it too;
                // the *next* call returns None and stops the worker.
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {}
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn job(req: Request) -> (Job, Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        let id = req.id;
        (Job::new(req, Completion::channel(tx, id)), rx)
    }

    #[test]
    fn drains_up_to_max_batch() {
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: 3,
            max_wait: Duration::from_millis(200),
        });
        let mut replies = Vec::new();
        for i in 0..5 {
            let (j, r) = job(Request::predict(i, 0));
            tx.send(j).unwrap();
            replies.push(r);
        }
        let first = queue.next_batch().unwrap();
        assert_eq!(first.len(), 3);
        let second = queue.next_batch().unwrap();
        assert_eq!(second.len(), 2);
        assert_eq!(first[0].request.user, Some(0));
        assert_eq!(second[1].request.user, Some(4));
    }

    #[test]
    fn lone_job_released_after_window() {
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
        });
        let (j, _r) = job(Request::stats());
        tx.send(j).unwrap();
        let start = Instant::now();
        let batch = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn disconnect_ends_the_queue() {
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
        });
        drop(tx);
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn dropped_completion_synthesizes_a_response() {
        let (tx, rx) = mpsc::channel();
        drop(Completion::channel(tx, Some(9)));
        let resp = rx.recv().unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.id, Some(9));
    }

    #[test]
    fn zero_wait_still_delivers() {
        let (tx, queue) = BatchQueue::new(BatchConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
        });
        let (j, _r) = job(Request::stats());
        tx.send(j).unwrap();
        assert_eq!(queue.next_batch().unwrap().len(), 1);
    }
}
