//! Intra-shard WAL replication: fenced leader terms, follower shipping and
//! quorum acks.
//!
//! One replica per shard is the *ingest leader*; the rest are followers.
//! The leader appends each accepted review to its own WAL (exactly as an
//! unreplicated engine would), then ships it to every follower through the
//! `Replicate` wire op — batched, CRC-checked per record, contiguous in
//! *log position* (the dense count of records accepted since the last
//! compaction base). Followers persist shipped records to their own WALs
//! and apply them through the same `SeqSet` dedup the client-facing ingest
//! path uses, so redelivery is idempotent at both the position and the
//! sequence-id layer.
//!
//! **Ack levels.** At [`AckLevel::Leader`] an ingest ack means what it
//! always meant: fsync'd on the replica that took the write. At
//! [`AckLevel::Quorum`] the ack additionally waits until a majority of the
//! replica set (leader included) holds the record durably — the worker
//! parks on a condvar that every follower acknowledgment pokes. A write
//! that cannot reach quorum before the timeout is refused `Unavailable`
//! *without* retracting local durability: the client retries with the same
//! seq and the duplicate path waits again.
//!
//! **Fencing.** Every replica persists a replication *epoch* (leader term)
//! in its artifact directory. `Promote` installs a strictly higher epoch
//! and turns the receiving replica into the leader; `Replicate` carries
//! the shipping leader's epoch, and a follower whose persisted epoch is
//! higher refuses with a structured `StaleEpoch`. A partitioned old leader
//! learns it has been fenced from that refusal, marks itself *deposed*,
//! and from then on refuses `IngestReview` with `NotLeader` — it can never
//! ack a write the new term's quorum does not have.
//!
//! **Catch-up.** A follower that restarts (or missed shipments) replays
//! its own WAL, then pulls missing positions from the leader with
//! `FetchWal` until it draws level; the push path self-heals the same way
//! because a follower acks every `Replicate` with its durable count and
//! the leader rewinds its shipping cursor to whatever the follower reports.
//!
//! The shipping transport is a deliberately minimal blocking NDJSON client
//! over `std::net::TcpStream` — one request in flight per follower, the
//! same framing the public protocol uses, no new dependencies.

use crate::protocol::{ErrorKind, ReplRecordDto, Request, Response};
use crate::wal::WalRecord;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// File inside the artifact directory persisting the replication epoch.
/// Written atomically (tmp + rename + fsync) before any action under the
/// new term, so a crashed-and-restarted replica can never un-fence itself.
pub const EPOCH_FILE: &str = "repl_epoch";

/// How many records one `Replicate` batch may carry.
const BATCH_MAX: usize = 16;
/// Soft byte budget for one encoded `Replicate` line — kept well under the
/// wire layer's `MAX_LINE_BYTES` so a batch is never refused for size.
const BATCH_BYTE_BUDGET: usize = 8 * 1024;
/// Per-record encoding overhead assumed against the byte budget.
const RECORD_OVERHEAD: usize = 96;

/// When an `IngestReview` ack is released to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckLevel {
    /// Ack after the leader's own fsync — single-copy durability, the
    /// pre-replication behaviour.
    Leader,
    /// Ack only once a majority of the replica set holds the record
    /// durably (leader plus `⌈(n+1)/2⌉ - 1` followers).
    Quorum,
}

/// Which side of the replication protocol this replica starts on.
#[derive(Debug, Clone)]
pub enum ReplRole {
    /// Ingest leader: accepts `IngestReview`, ships to `followers`.
    /// `epoch` is the requested starting term; a higher persisted term
    /// from an earlier incarnation wins.
    Leader {
        /// Follower replica addresses to ship the WAL to.
        followers: Vec<String>,
        /// Requested starting epoch (≥ 1).
        epoch: u64,
    },
    /// Follower: refuses client ingest with `NotLeader`, applies
    /// `Replicate` shipments, pulls catch-up ranges from `leader`.
    Follower {
        /// Last known leader address (the `NotLeader` redirect hint and
        /// the catch-up target); `None` when not yet known.
        leader: Option<String>,
    },
}

/// Replication knobs ([`crate::Engine::open_replicated`]).
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Starting role.
    pub role: ReplRole,
    /// Ack durability level for client ingest.
    pub ack: AckLevel,
    /// How long a quorum ack may wait before refusing `Unavailable`.
    pub quorum_timeout: Duration,
    /// This replica's own advertised address, shipped to followers so they
    /// can hand out `NotLeader` redirects that point at the right place.
    pub self_addr: Option<String>,
    /// Sleep between reconnect attempts on a dead follower link.
    pub reconnect_backoff: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            role: ReplRole::Follower { leader: None },
            ack: AckLevel::Quorum,
            quorum_timeout: Duration::from_secs(5),
            self_addr: None,
            reconnect_backoff: Duration::from_millis(50),
        }
    }
}

/// Why a quorum ack was not released.
#[derive(Debug, PartialEq, Eq)]
pub enum QuorumError {
    /// This replica was fenced mid-wait (a follower refused its epoch);
    /// the hint, when present, names the new leader.
    Deposed(Option<String>),
    /// The quorum did not form before the timeout. The record *is* locally
    /// durable; a client retry with the same seq waits again.
    Timeout,
}

/// Mutable replication state, all under one lock (see field docs for what
/// moves together). Lock order where both are held: ingest `inner` →
/// `ReplInner`; the shippers and quorum waiters take only `ReplInner`.
pub(crate) struct ReplInner {
    /// Persisted leader term this replica is fenced at.
    pub(crate) epoch: u64,
    /// Whether this replica is currently the ingest leader.
    pub(crate) leader: bool,
    /// A leader that learned it was fenced: refuses ingest with
    /// `NotLeader` until promoted again.
    pub(crate) deposed: bool,
    /// Last known leader address (redirect hint, catch-up target).
    pub(crate) leader_hint: Option<String>,
    /// Follower addresses the current term ships to (leader only).
    pub(crate) followers: Vec<String>,
    /// Durable record count each follower has confirmed.
    pub(crate) acked: HashMap<String, u64>,
    /// The replication log: every record accepted since `base`, in WAL
    /// append order. Position `base + i` holds `log[i]`.
    pub(crate) log: Vec<WalRecord>,
    /// Records folded into the artifact (before this process opened, or by
    /// a compaction since) — the log's position offset. Positions below
    /// `base` are not fetchable.
    pub(crate) base: u64,
    /// Shipper generation: bumped by every promotion (same-term peer
    /// refreshes included), and checked by `shipper_loop` so superseded
    /// shippers exit instead of running duplicates against the new set.
    pub(crate) ship_gen: u64,
}

impl ReplInner {
    /// Total records this replica holds durably (the `replicated_seq`
    /// watermark): folded base plus the live log.
    pub(crate) fn count(&self) -> u64 {
        self.base + self.log.len() as u64
    }
}

/// Shared replication state attached to an ingest-enabled engine.
pub struct Replication {
    /// Ack level for client ingest.
    pub ack: AckLevel,
    quorum_timeout: Duration,
    backoff: Duration,
    self_addr: Option<String>,
    dir: PathBuf,
    inner: Mutex<ReplInner>,
    /// Poked on: log appends (shippers wake), follower acks (quorum
    /// waiters wake), deposal and shutdown (everyone wakes to exit).
    cv: Condvar,
    stop: AtomicBool,
    shippers: Mutex<Vec<JoinHandle<()>>>,
}

impl Replication {
    /// Builds the replication state for an artifact directory, loading (or
    /// initialising) the persisted epoch. The log is empty until the
    /// engine seeds it from WAL replay.
    pub fn open(dir: &Path, cfg: ReplicationConfig) -> io::Result<Self> {
        let persisted = load_epoch(dir)?;
        let (epoch, leader, followers, leader_hint) = match cfg.role {
            ReplRole::Leader { followers, epoch } => {
                // A higher persisted term always wins: a replica that was
                // fenced in a previous incarnation must not resurrect the
                // old term just because its flags say "leader".
                (persisted.max(epoch).max(1), true, followers, None)
            }
            ReplRole::Follower { leader } => (persisted, false, Vec::new(), leader),
        };
        if epoch != persisted {
            persist_epoch(dir, epoch)?;
        }
        Ok(Self {
            ack: cfg.ack,
            quorum_timeout: cfg.quorum_timeout,
            backoff: cfg.reconnect_backoff,
            self_addr: cfg.self_addr,
            dir: dir.to_path_buf(),
            inner: Mutex::new(ReplInner {
                epoch,
                leader,
                deposed: false,
                leader_hint,
                followers,
                acked: HashMap::new(),
                log: Vec::new(),
                base: 0,
                ship_gen: 0,
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            shippers: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, ReplInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes every waiter (shippers, quorum waits) to re-check state.
    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    /// Seeds the log from WAL replay at engine open: `records` are the
    /// replayed-but-unfolded records in append order, `base` the count the
    /// ledger says compaction already folded.
    pub(crate) fn seed(&self, records: Vec<WalRecord>, base: u64) {
        let mut inner = self.lock();
        inner.log = records;
        inner.base = base;
    }

    /// Current persisted epoch.
    pub fn current_epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Whether this replica currently acts as ingest leader (promoted and
    /// not fenced).
    pub fn is_leader(&self) -> bool {
        let inner = self.lock();
        inner.leader && !inner.deposed
    }

    /// The `NotLeader` redirect hint.
    pub fn leader_hint(&self) -> Option<String> {
        self.lock().leader_hint.clone()
    }

    /// `(epoch, replicated_seq, replication_lag)` for the stats snapshot.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.lock();
        let count = inner.count();
        let lag = if inner.leader && !inner.followers.is_empty() {
            let slowest =
                inner.followers.iter().map(|f| inner.acked.get(f).copied().unwrap_or(0)).min();
            count.saturating_sub(slowest.unwrap_or(count))
        } else {
            0
        };
        (inner.epoch, count, lag)
    }

    /// Majority size of the replica set (leader + followers).
    fn quorum_size(followers: usize) -> usize {
        (1 + followers) / 2 + 1
    }

    /// Blocks until `target` records are durable on a quorum of the
    /// replica set, the replica is fenced, or the timeout lapses. The
    /// leader's own copy always counts as one member.
    pub fn quorum_wait(&self, target: u64) -> Result<(), QuorumError> {
        let deadline = Instant::now() + self.quorum_timeout;
        let mut inner = self.lock();
        loop {
            if inner.deposed || !inner.leader {
                return Err(QuorumError::Deposed(inner.leader_hint.clone()));
            }
            let need = Self::quorum_size(inner.followers.len()) - 1;
            let have = inner
                .followers
                .iter()
                .filter(|f| inner.acked.get(*f).is_some_and(|&a| a >= target))
                .count();
            if have >= need {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(QuorumError::Timeout);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Adopts a strictly higher epoch observed on incoming traffic: fences
    /// any local leadership and persists the new term. Caller must have
    /// verified `epoch > current`.
    pub(crate) fn adopt_epoch(&self, epoch: u64, leader_hint: Option<String>) -> io::Result<()> {
        persist_epoch(&self.dir, epoch)?;
        let mut inner = self.lock();
        inner.epoch = epoch;
        if inner.leader {
            inner.deposed = true;
        }
        inner.leader = false;
        if leader_hint.is_some() {
            inner.leader_hint = leader_hint;
        }
        drop(inner);
        self.notify();
        Ok(())
    }

    /// Installs this replica as leader under `epoch` (strictly higher than
    /// the current term — or the same term as a peer-set refresh on the
    /// acting leader, caller-verified), shipping to `peers`. Spawns a
    /// fresh shipper per follower; shippers of any earlier promotion
    /// observe the generation bump and exit on their own, so a same-term
    /// refresh replaces its shippers instead of duplicating them.
    pub fn promote(self: &Arc<Self>, epoch: u64, peers: Vec<String>) -> io::Result<()> {
        persist_epoch(&self.dir, epoch)?;
        {
            let mut inner = self.lock();
            inner.epoch = epoch;
            inner.leader = true;
            inner.deposed = false;
            inner.leader_hint = self.self_addr.clone();
            inner.followers = peers;
            inner.acked.clear();
            inner.ship_gen += 1;
        }
        self.notify();
        self.spawn_shippers();
        Ok(())
    }

    /// Spawns one shipper thread per follower of the *current* promotion.
    pub(crate) fn spawn_shippers(self: &Arc<Self>) {
        let (epoch, gen, followers) = {
            let inner = self.lock();
            (inner.epoch, inner.ship_gen, inner.followers.clone())
        };
        let mut handles = self.shippers.lock().unwrap_or_else(|e| e.into_inner());
        // Superseded shippers exit on their own (they check the epoch and
        // generation); reap the already-finished ones so the vec stays
        // bounded.
        handles.retain(|h| !h.is_finished());
        for addr in followers {
            let repl = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("rrre-repl-ship-{addr}"))
                .spawn(move || shipper_loop(&repl, &addr, epoch, gen))
                .expect("failed to spawn replication shipper");
            handles.push(handle);
        }
    }

    /// Stops every replication thread and joins them. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.notify();
        let handles = std::mem::take(&mut *self.shippers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether [`Replication::stop`] was called.
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// One follower's shipping loop: waits for log growth past the follower's
/// confirmed count, sends a contiguous CRC-stamped batch, and rewinds to
/// whatever durable count the follower reports. Exits when the term
/// changes, a newer promotion supersedes this shipper's generation, the
/// leader is fenced, or the engine stops.
fn shipper_loop(repl: &Arc<Replication>, addr: &str, my_epoch: u64, my_gen: u64) {
    let mut conn: Option<LineConn> = None;
    let mut link_failures = 0u64;
    loop {
        // Decide what to ship under the lock; never hold it across I/O.
        let (epoch, from, batch) = {
            let mut inner = repl.lock();
            loop {
                if repl.stopping()
                    || inner.epoch != my_epoch
                    || inner.ship_gen != my_gen
                    || inner.deposed
                    || !inner.leader
                {
                    return;
                }
                let count = inner.count();
                match inner.acked.get(addr).copied() {
                    // Position unknown: probe with an empty batch so the
                    // follower tells us its durable count.
                    None => break (inner.epoch, count, Vec::new()),
                    Some(a) if a < count => {
                        if a < inner.base {
                            // The follower is behind records this process
                            // never saw (folded before open). It cannot be
                            // caught up by shipping; it must pull a full
                            // artifact resync out of band. Park until the
                            // term changes rather than spinning.
                            let (guard, _) = repl
                                .cv
                                .wait_timeout(inner, Duration::from_millis(500))
                                .unwrap_or_else(|e| e.into_inner());
                            inner = guard;
                            continue;
                        }
                        let start = (a - inner.base) as usize;
                        let mut bytes = 0usize;
                        let mut batch = Vec::new();
                        for rec in inner.log[start..].iter().take(BATCH_MAX) {
                            bytes += rec.text.len() + RECORD_OVERHEAD;
                            if !batch.is_empty() && bytes > BATCH_BYTE_BUDGET {
                                break;
                            }
                            batch.push(ReplRecordDto::sealed(
                                rec.seq,
                                rec.user,
                                rec.item,
                                rec.rating,
                                rec.ts,
                                rec.text.clone(),
                            ));
                        }
                        break (inner.epoch, a, batch);
                    }
                    // Fully caught up: wait for appends (or exit signals).
                    Some(_) => {
                        let (guard, _) = repl
                            .cv
                            .wait_timeout(inner, Duration::from_millis(200))
                            .unwrap_or_else(|e| e.into_inner());
                        inner = guard;
                    }
                }
            }
        };
        let mut req = Request::replicate(epoch, from, batch);
        // peers[0] carries the leader's advertised address so followers can
        // hand out accurate NotLeader redirects.
        if let Some(self_addr) = &repl.self_addr {
            req.peers = Some(vec![self_addr.clone()]);
        }
        match exchange_on(&mut conn, addr, &req, Duration::from_secs(2)) {
            Ok(resp) => {
                if resp.kind == Some(ErrorKind::StaleEpoch) {
                    // Fenced: a follower is already serving a higher term.
                    // Depose ourselves so no further ingest is acked here.
                    let mut inner = repl.lock();
                    if inner.epoch == my_epoch {
                        inner.deposed = true;
                        if let Some(e) = resp.epoch {
                            inner.epoch = inner.epoch.max(e);
                            let _ = persist_epoch(&repl.dir, inner.epoch);
                        }
                    }
                    drop(inner);
                    repl.notify();
                    return;
                }
                link_failures = 0;
                if let (true, Some(confirmed)) = (resp.ok, resp.replicated) {
                    let mut inner = repl.lock();
                    inner.acked.insert(addr.to_string(), confirmed);
                    drop(inner);
                    repl.notify();
                } else {
                    // Structured refusal we cannot act on — back off and
                    // retry from the follower's next report.
                    std::thread::sleep(repl.backoff);
                }
            }
            Err(e) => {
                log_link_failure(&mut link_failures, "shipper", addr, &e);
                conn = None;
                std::thread::sleep(repl.backoff);
            }
        }
    }
}

/// Logs a repeatedly-failing replica link on the first consecutive failure
/// and every 100th thereafter — a dead or misconfigured follower address is
/// visible in the logs without flooding them at the retry cadence.
pub(crate) fn log_link_failure(failures: &mut u64, who: &str, addr: &str, err: &io::Error) {
    *failures += 1;
    if *failures == 1 || *failures % 100 == 0 {
        eprintln!(
            "rrre-serve: replication {who} link to {addr} failing \
             ({} consecutive attempts): {err}",
            *failures
        );
    }
}

/// Loads the persisted epoch (absent file → 0, never been promoted).
pub fn load_epoch(dir: &Path) -> io::Result<u64> {
    match fs::read_to_string(dir.join(EPOCH_FILE)) {
        Ok(text) => text.trim().parse::<u64>().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad {EPOCH_FILE}: {e}"))
        }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

/// Persists the epoch atomically (tmp + rename + fsync, then a directory
/// fsync so the rename itself is on the platter): after this returns, a
/// restart can never come back up fenced at a lower term.
pub fn persist_epoch(dir: &Path, epoch: u64) -> io::Result<()> {
    let tmp = dir.join(format!("{EPOCH_FILE}.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(epoch.to_string().as_bytes())?;
    f.sync_data()?;
    fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    // The rename lives in the directory, not the file: without this fsync
    // a power loss may roll the directory entry back to the old epoch.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// A blocking single-request-in-flight NDJSON connection.
pub(crate) struct LineConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineConn {
    /// Connects with a bounded timeout. Addresses resolve through
    /// `ToSocketAddrs`, so hostnames (`replica-2:7001`) work, not just
    /// socket-address literals.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}: {e}")))?
            .next()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("addr {addr} resolved to no socket address"),
                )
            })?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, buf: Vec::new() })
    }

    /// Writes one request line and reads one response line.
    pub(crate) fn exchange(&mut self, req: &Request, timeout: Duration) -> io::Result<Response> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        let mut line = serde_json::to_string(req).map_err(io::Error::other)?;
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        // Lockstep protocol: exactly one response is in flight, so reading
        // up to the first newline consumes exactly our reply.
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line = self.buf.drain(..=pos).collect::<Vec<u8>>();
                let text = std::str::from_utf8(&line[..line.len() - 1])
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                return serde_json::from_str::<Response>(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")));
            }
            if self.buf.len() > 1 << 20 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "response line exceeds 1 MiB"));
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-response"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Sends `req` over a cached connection to `addr`, dialling (or
/// redialling) as needed. On any transport error the cache is cleared so
/// the next call redials.
pub(crate) fn exchange_on(
    conn: &mut Option<LineConn>,
    addr: &str,
    req: &Request,
    timeout: Duration,
) -> io::Result<Response> {
    if conn.is_none() {
        *conn = Some(LineConn::connect(addr, timeout)?);
    }
    match conn.as_mut().expect("just set").exchange(req, timeout) {
        Ok(resp) => Ok(resp),
        Err(e) => {
            *conn = None;
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rrre-repl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn leader_cfg(followers: Vec<String>, epoch: u64) -> ReplicationConfig {
        ReplicationConfig {
            role: ReplRole::Leader { followers, epoch },
            quorum_timeout: Duration::from_millis(200),
            ..ReplicationConfig::default()
        }
    }

    #[test]
    fn epoch_persists_and_higher_term_wins_on_reopen() {
        let dir = tmp("epoch");
        assert_eq!(load_epoch(&dir).unwrap(), 0);
        let repl = Replication::open(&dir, leader_cfg(vec![], 1)).unwrap();
        assert_eq!(repl.current_epoch(), 1);
        assert_eq!(load_epoch(&dir).unwrap(), 1);
        persist_epoch(&dir, 7).unwrap();
        // Reopening as leader with a stale requested epoch keeps the
        // persisted (higher) term — a fenced replica can't self-unfence.
        let repl = Replication::open(&dir, leader_cfg(vec![], 2)).unwrap();
        assert_eq!(repl.current_epoch(), 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quorum_wait_releases_on_follower_ack_and_times_out_without() {
        let dir = tmp("quorum");
        let repl = Arc::new(
            Replication::open(&dir, leader_cfg(vec!["f1".into(), "f2".into()], 1)).unwrap(),
        );
        // 3-replica set: quorum is 2, so one follower ack releases.
        assert_eq!(repl.quorum_wait(1), Err(QuorumError::Timeout));
        {
            let mut inner = repl.lock();
            inner.acked.insert("f1".into(), 5);
        }
        repl.notify();
        assert_eq!(repl.quorum_wait(5), Ok(()));
        assert_eq!(repl.quorum_wait(6), Err(QuorumError::Timeout));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deposed_leader_fails_quorum_waits_immediately() {
        let dir = tmp("deposed");
        let repl =
            Arc::new(Replication::open(&dir, leader_cfg(vec!["f1".into()], 3)).unwrap());
        repl.adopt_epoch(4, Some("10.0.0.9:4000".into())).unwrap();
        assert!(!repl.is_leader());
        match repl.quorum_wait(1) {
            Err(QuorumError::Deposed(hint)) => assert_eq!(hint.as_deref(), Some("10.0.0.9:4000")),
            other => panic!("expected deposed, got {other:?}"),
        }
        assert_eq!(load_epoch(&dir).unwrap(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_installs_the_new_term_and_clears_deposal() {
        let dir = tmp("promote");
        let repl = Arc::new(
            Replication::open(&dir, ReplicationConfig::default()).unwrap(),
        );
        assert!(!repl.is_leader());
        repl.promote(2, vec![]).unwrap();
        assert!(repl.is_leader());
        assert_eq!(repl.current_epoch(), 2);
        assert_eq!(load_epoch(&dir).unwrap(), 2);
        // Quorum of a 1-replica set is the leader alone: waits release
        // immediately.
        assert_eq!(repl.quorum_wait(10), Ok(()));
        repl.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_term_peer_refresh_replaces_rather_than_duplicates_shippers() {
        let dir = tmp("peer-refresh");
        let repl = Arc::new(
            Replication::open(&dir, leader_cfg(vec!["127.0.0.1:1".into()], 1)).unwrap(),
        );
        repl.spawn_shippers();
        // Each refresh bumps the shipper generation; superseded shippers
        // observe the bump and exit instead of running duplicates.
        for _ in 0..3 {
            repl.promote(1, vec!["127.0.0.1:1".into()]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let live = repl
                .shippers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .filter(|h| !h.is_finished())
                .count();
            if live <= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{live} shipper threads still live after same-term refreshes"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        repl.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn line_conn_accepts_hostnames_not_just_socket_literals() {
        // `replica-2:7001`-style addresses must *resolve*, not be refused
        // as unparseable before the dial. The connection itself may still
        // fail (nothing listens on the reserved-then-released port) — the
        // regression under test is `InvalidInput` on every hostname.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        drop(listener);
        if let Err(err) = LineConn::connect(&format!("localhost:{port}"), Duration::from_millis(500))
        {
            assert_ne!(
                err.kind(),
                io::ErrorKind::InvalidInput,
                "hostname was rejected instead of resolved: {err}"
            );
        }
    }

    #[test]
    fn stats_report_lag_to_the_slowest_follower() {
        let dir = tmp("lag");
        let repl = Arc::new(
            Replication::open(&dir, leader_cfg(vec!["f1".into(), "f2".into()], 1)).unwrap(),
        );
        let recs = (0..4)
            .map(|seq| WalRecord {
                seq,
                user: 0,
                item: 0,
                rating: 4.0,
                ts: 0,
                text: String::new(),
            })
            .collect();
        repl.seed(recs, 10);
        {
            let mut inner = repl.lock();
            inner.acked.insert("f1".into(), 14);
            inner.acked.insert("f2".into(), 11);
        }
        let (epoch, count, lag) = repl.stats();
        assert_eq!((epoch, count), (1, 14));
        assert_eq!(lag, 3, "lag is to the slowest follower");
        fs::remove_dir_all(&dir).unwrap();
    }
}
