//! Engine-wide counters and a log-bucketed latency histogram.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering): the stats
//! path must never contend with the serving path. Counters are monotonic
//! over the engine's lifetime; a snapshot is a consistent-enough point-in-
//! time read for operational monitoring, not a transaction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use rrre_wire::StatsSnapshot;

const BUCKETS: usize = 64;

/// Power-of-two latency histogram: bucket `b` covers `[2^b, 2^(b+1))`
/// microseconds (bucket 0 is `< 2 µs`). 64 buckets cover any `u64` of
/// microseconds, so recording never saturates.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    fn bucket_of(micros: u64) -> usize {
        (u64::BITS - micros.max(1).leading_zeros() - 1) as usize
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let b = Self::bucket_of(latency.as_micros() as u64);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (in µs) of the bucket containing the `q`-quantile
    /// observation, or 0 with no observations. Resolution is a factor of
    /// two — honest enough for p50/p99 dashboards, free on the hot path.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (b + 1);
            }
        }
        u64::MAX
    }
}

/// Counters owned by the TCP front end (the event loop), shared with the
/// engine so `Op::Stats` reports them. `open_conns` and
/// `pipelined_inflight` are gauges — incremented and decremented as
/// connections and requests come and go; the other two are monotonic.
#[derive(Default)]
pub struct FrontendStats {
    /// Connections currently open (gauge).
    pub open_conns: AtomicU64,
    /// Requests submitted by the front end and not yet answered (gauge) —
    /// the pipelining depth across every connection.
    pub pipelined_inflight: AtomicU64,
    /// `writev` calls that flushed two or more response frames in one
    /// syscall.
    pub writev_batches: AtomicU64,
    /// Read events that left an incomplete frame buffered in a
    /// connection's decoder.
    pub frames_partial: AtomicU64,
}

/// Monotonic counters for one [`crate::Engine`].
#[derive(Default)]
pub struct EngineStats {
    /// Requests that entered `process` (including ones that errored).
    pub requests: AtomicU64,
    /// Requests answered with `ok = false`.
    pub errors: AtomicU64,
    /// Batches drained from the micro-batch queue.
    pub batches: AtomicU64,
    /// Jobs across all drained batches (mean batch = `batched_jobs/batches`).
    pub batched_jobs: AtomicU64,
    /// Largest batch drained so far.
    pub max_batch: AtomicU64,
    /// Tower (UserNet/ItemNet) forward passes actually executed — cache
    /// misses. A warm cache keeps this flat while `requests` grows.
    pub tower_evals: AtomicU64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_misses: AtomicU64,
    /// Requests shed at submission because the queue (or the circuit
    /// breaker) refused them. Shed requests never enter `process`, so they
    /// are *not* counted in `requests` or `errors`.
    pub shed: AtomicU64,
    /// Hot-reload attempts (successful or not).
    pub reloads: AtomicU64,
    /// Hot-reload attempts that failed validation; the previous generation
    /// kept serving.
    pub reload_failures: AtomicU64,
    /// Worker panics caught by the supervisor (each one feeds the circuit
    /// breaker and restarts the worker loop after backoff).
    pub worker_panics: AtomicU64,
    /// Requests refused with `WrongShard` because this engine does not own
    /// the target entity (always 0 on whole-model engines).
    pub cross_shard_rejects: AtomicU64,
    /// Shard-scoped `Recommend` requests served — this engine's side of a
    /// scatter-gather fan-out (always 0 on whole-model engines).
    pub scatter_fanout: AtomicU64,
    /// Reviews durably accepted through `IngestReview` (first delivery
    /// only; duplicates count below).
    pub ingested: AtomicU64,
    /// `IngestReview` deliveries whose sequence id was already accepted —
    /// re-acked without re-applying.
    pub ingest_duplicates: AtomicU64,
    /// Bytes appended to (or recovered from) the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// Incremental tower refreshes published (no generation swap).
    pub refreshes: AtomicU64,
    /// WAL compactions folded into a new artifact generation.
    pub compactions: AtomicU64,
    /// Torn WAL tails truncated during recovery. Mid-log corruption is
    /// *not* counted — it fails closed instead of recovering.
    pub wal_recoveries: AtomicU64,
    /// Replication epoch (leader term) this replica is fenced at — a gauge
    /// the replication layer stores into, 0 without replication.
    pub epoch: AtomicU64,
    /// Records durably applied through the replication log (gauge; leader
    /// appends plus follower-applied shipments).
    pub replicated_seq: AtomicU64,
    /// Leader-side shipping backlog to the slowest live follower (gauge).
    pub replication_lag: AtomicU64,
    /// Requests refused with `StaleEpoch` — fenced stale-leader traffic.
    pub stale_epoch_rejections: AtomicU64,
    /// Enqueue-to-reply latency of every request.
    pub latency: LatencyHistogram,
}

impl EngineStats {
    /// Records a drained batch of `n` jobs.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Point-in-time snapshot including the cache counters, which live on
    /// the caches themselves. `draining` comes from the engine's shutdown
    /// flag; readiness is derived — not draining and breaker closed.
    pub fn snapshot(
        &self,
        user_cache: &crate::TowerCache,
        item_cache: &crate::TowerCache,
        generation: u64,
        breaker_open: bool,
        draining: bool,
        shard_id: Option<u32>,
        frontend: &FrontendStats,
    ) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_jobs = self.batched_jobs.load(Ordering::Relaxed);
        let (uh, um) = (user_cache.hits(), user_cache.misses());
        let (ih, im) = (item_cache.hits(), item_cache.misses());
        let lookups = uh + um + ih + im;
        StatsSnapshot {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 { 0.0 } else { batched_jobs as f64 / batches as f64 },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            user_cache_hits: uh,
            user_cache_misses: um,
            item_cache_hits: ih,
            item_cache_misses: im,
            cache_hit_rate: if lookups == 0 { 0.0 } else { (uh + ih) as f64 / lookups as f64 },
            tower_evals: self.tower_evals.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            generation,
            breaker_open,
            draining,
            ready: !draining && !breaker_open,
            p50_latency_us: self.latency.quantile_micros(0.50),
            p99_latency_us: self.latency.quantile_micros(0.99),
            shard_id,
            cross_shard_rejects: self.cross_shard_rejects.load(Ordering::Relaxed),
            scatter_fanout: self.scatter_fanout.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            ingest_duplicates: self.ingest_duplicates.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            wal_recoveries: self.wal_recoveries.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            replicated_seq: self.replicated_seq.load(Ordering::Relaxed),
            replication_lag: self.replication_lag.load(Ordering::Relaxed),
            stale_epoch_rejections: self.stale_epoch_rejections.load(Ordering::Relaxed),
            // Engines never degrade on their own — they either own the
            // entity or refuse; the scatter-gather client fills this in
            // merged snapshots.
            degraded_responses: 0,
            open_conns: frontend.open_conns.load(Ordering::Relaxed),
            pipelined_inflight: frontend.pipelined_inflight.load(Ordering::Relaxed),
            writev_batches: frontend.writev_batches.load(Ordering::Relaxed),
            frames_partial: frontend.frames_partial.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1000));
        h.record(Duration::from_micros(1001));
        assert_eq!(h.count(), 3);
        // Two of three observations sit in the ~1ms bucket, so p99 lands
        // there: upper bound 2^10 = 1024 µs.
        assert_eq!(h.quantile_micros(0.99), 1024);
        assert!(h.quantile_micros(0.01) <= 2);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(LatencyHistogram::default().quantile_micros(0.5), 0);
    }

    #[test]
    fn batch_accounting() {
        let s = EngineStats::default();
        s.record_batch(3);
        s.record_batch(5);
        assert_eq!(s.batches.load(Ordering::Relaxed), 2);
        assert_eq!(s.batched_jobs.load(Ordering::Relaxed), 8);
        assert_eq!(s.max_batch.load(Ordering::Relaxed), 5);
    }
}
