//! Per-connection state for the event loop: the incremental frame
//! decoder on the read side and a bounded response queue on the write
//! side.
//!
//! A connection never owns a thread. The event loop reads whatever the
//! socket has into the [`FrameDecoder`], submits decoded frames to the
//! engine, and queues encoded responses here; flushing happens with
//! `writev` whenever the socket is writable, batching every queued
//! response line into as few syscalls as the kernel buffer allows.
//!
//! **Backpressure** is two-sided and per connection: reads stop (the loop
//! drops `EPOLLIN` interest) while either the queued output exceeds
//! [`write backpressure`](Conn::wants_read) limits or the connection
//! already has its in-flight quota submitted; both drain as responses
//! complete and flush, and read interest comes back automatically.

use crate::frame::FrameDecoder;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;

/// One live connection's state. Owned by the event loop; nothing here is
/// shared or locked.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Splits the inbound byte stream into NDJSON frames.
    pub decoder: FrameDecoder,
    /// Encoded response lines (each already `\n`-terminated) awaiting the
    /// socket, in completion order.
    pub out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written (a `writev` may split a
    /// frame across calls).
    pub out_head: usize,
    /// Total queued output bytes (the write-backpressure watermark input).
    pub out_bytes: usize,
    /// Requests submitted to the engine and not yet completed.
    pub inflight: usize,
    /// The peer closed its write half; no more frames will arrive.
    pub eof: bool,
    /// Close once `out` drains (used for the one-response refusal paths).
    pub close_after_flush: bool,
    /// Last moment bytes arrived — the idle-timeout basis.
    pub last_activity: Instant,
    /// The interest bits currently registered with epoll (so the loop
    /// only issues `EPOLL_CTL_MOD` when they actually change).
    pub registered_interest: u32,
}

impl Conn {
    /// Wraps a freshly accepted nonblocking socket.
    pub fn new(stream: TcpStream, max_line: usize, now: Instant) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(max_line),
            out: VecDeque::new(),
            out_head: 0,
            out_bytes: 0,
            inflight: 0,
            eof: false,
            close_after_flush: false,
            last_activity: now,
            registered_interest: 0,
        }
    }

    /// Queues one encoded response line for the socket.
    pub fn enqueue(&mut self, frame: Vec<u8>) {
        self.out_bytes += frame.len();
        self.out.push_back(frame);
    }

    /// Whether queued output remains.
    pub fn has_output(&self) -> bool {
        !self.out.is_empty()
    }

    /// Whether the loop should keep `EPOLLIN` interest: not past EOF, not
    /// closing, in-flight quota free, and queued output under the
    /// watermark. Dropping read interest *is* the backpressure — the
    /// kernel's receive buffer fills and TCP pushes back on the peer.
    pub fn wants_read(&self, max_inflight: usize, write_buffer_cap: usize) -> bool {
        !self.eof
            && !self.close_after_flush
            && self.inflight < max_inflight
            && self.out_bytes < write_buffer_cap
    }

    /// Whether every obligation is met: nothing queued, nothing in
    /// flight, and no frames decoded but unclaimed. An EOF'd connection
    /// closes exactly when this turns true.
    pub fn is_drained(&self) -> bool {
        self.out.is_empty() && self.inflight == 0
    }

    /// Drops the `n` flushed bytes off the front of the queue.
    pub fn consume_out(&mut self, mut n: usize) {
        self.out_bytes -= n;
        n += self.out_head;
        self.out_head = 0;
        while n > 0 {
            let front_len = match self.out.front() {
                Some(f) => f.len(),
                None => break,
            };
            if n >= front_len {
                self.out.pop_front();
                n -= front_len;
            } else {
                self.out_head = n;
                break;
            }
        }
    }

    /// The queue's front view for `writev`: the partially written first
    /// frame's remainder, then whole frames.
    pub fn out_slices(&self) -> Vec<&[u8]> {
        let mut slices: Vec<&[u8]> = Vec::with_capacity(self.out.len().min(64));
        for (i, frame) in self.out.iter().enumerate() {
            if i == 0 {
                slices.push(&frame[self.out_head..]);
            } else {
                slices.push(frame.as_slice());
            }
        }
        slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn conn() -> Conn {
        // A real socket pair purely to satisfy the field; the logic under
        // test never touches it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream, 1024, Instant::now())
    }

    #[test]
    fn consume_out_tracks_partial_frames() {
        let mut c = conn();
        c.enqueue(b"aaaa\n".to_vec());
        c.enqueue(b"bb\n".to_vec());
        assert_eq!(c.out_bytes, 8);
        c.consume_out(3); // mid-first-frame
        assert_eq!(c.out_head, 3);
        assert_eq!(c.out_slices(), vec![&b"a\n"[..], &b"bb\n"[..]]);
        c.consume_out(4); // rest of first + "bb"
        assert_eq!(c.out_slices(), vec![&b"\n"[..]]);
        c.consume_out(1);
        assert!(!c.has_output());
        assert_eq!(c.out_bytes, 0);
    }

    #[test]
    fn backpressure_gates_read_interest() {
        let mut c = conn();
        assert!(c.wants_read(2, 100));
        c.inflight = 2;
        assert!(!c.wants_read(2, 100), "inflight quota exhausted");
        c.inflight = 0;
        c.enqueue(vec![b'x'; 100]);
        assert!(!c.wants_read(2, 100), "write watermark exceeded");
        c.consume_out(100);
        assert!(c.wants_read(2, 100));
        c.eof = true;
        assert!(!c.wants_read(2, 100));
    }
}
