//! The readiness-driven connection core: one epoll thread multiplexing
//! every connection.
//!
//! One thread owns the listener, a wakeup pipe, and every connection's
//! socket, registered level-triggered with an `epoll` instance
//! ([`crate::sys`]). Each loop iteration: wait for readiness (bounded by
//! the timer wheel's next deadline and the poll tick), accept a batch,
//! read every readable socket into its [`crate::frame::FrameDecoder`],
//! submit decoded frames to the engine with completion callbacks, drain
//! the completion queue into per-connection output queues, flush with
//! `writev`, and reap idle connections whose wheel deadline expired.
//!
//! Workers never touch sockets: a completion pushes `(token, response)`
//! onto the [`Notifier`] and writes one byte to the wakeup pipe; the loop
//! drains the queue on its own thread. Responses therefore leave in
//! *completion* order — pipelining clients correlate by the ids echoed in
//! every response, which the wire protocol has carried from the start.

use crate::conn::Conn;
use crate::engine::Engine;
use crate::frame::FrameEvent;
use crate::protocol::{encode_response, ErrorKind, Response, MAX_LINE_BYTES};
use crate::server::ServerConfig;
use crate::stats::FrontendStats;
use crate::sys::{self, Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::timer::TimerWheel;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
/// Connection tokens start above the two reserved ones.
const FIRST_CONN_TOKEN: u64 = 2;
/// Connections accepted per listener event — level-triggered, so a deeper
/// backlog re-arms immediately; the bound just keeps one iteration from
/// starving reads during an accept storm.
const ACCEPT_BATCH: usize = 256;
/// Bytes read from one socket per readiness event, for the same fairness
/// reason (the remainder re-arms level-triggered).
const READ_BUDGET: usize = 256 * 1024;
/// Readiness events collected per `epoll_wait`.
const EVENTS_CAP: usize = 1024;

/// The worker-side half of request completion: a queue of answered
/// responses plus the wakeup pipe that gets the loop's attention.
pub(crate) struct Notifier {
    completions: Mutex<Vec<(u64, Response)>>,
    wake_tx: UnixStream,
}

impl Notifier {
    pub(crate) fn new(wake_tx: UnixStream) -> Self {
        let _ = wake_tx.set_nonblocking(true);
        Self { completions: Mutex::new(Vec::new()), wake_tx }
    }

    /// Called from worker threads (or inline for refusals): queue the
    /// response for `token` and wake the loop.
    pub(crate) fn complete(&self, token: u64, response: Response) {
        self.completions.lock().unwrap_or_else(|e| e.into_inner()).push((token, response));
        self.wake();
    }

    /// Wakes the loop without a completion (shutdown). A full pipe means a
    /// wakeup is already pending, so `WouldBlock` is success.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn drain(&self) -> Vec<(u64, Response)> {
        std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

fn encode_line(resp: &Response) -> Vec<u8> {
    let mut bytes = encode_response(resp).into_bytes();
    bytes.push(b'\n');
    bytes
}

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    engine: Arc<Engine>,
    frontend: Arc<FrontendStats>,
    notifier: Arc<Notifier>,
    cfg: ServerConfig,
    conns: HashMap<u64, Conn>,
    timers: TimerWheel,
    next_token: u64,
    stopping: bool,
}

/// Runs the loop until stopped and drained. Consumes the (nonblocking)
/// listener; `wake_rx` is the read half of the [`Notifier`]'s pipe.
pub(crate) fn run(
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
    notifier: Arc<Notifier>,
    wake_rx: UnixStream,
) {
    let Ok(epoll) = Epoll::new() else { return };
    if epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN).is_err() {
        return;
    }
    let _ = wake_rx.set_nonblocking(true);
    if epoll.add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN).is_err() {
        return;
    }
    let frontend = engine.frontend_stats();
    let mut el = EventLoop {
        epoll,
        listener,
        engine,
        frontend,
        notifier,
        cfg,
        conns: HashMap::new(),
        timers: TimerWheel::new(256, Duration::from_millis(25)),
        next_token: FIRST_CONN_TOKEN,
        stopping: false,
    };
    let mut events = vec![EpollEvent { events: 0, token: 0 }; EVENTS_CAP];
    let mut wake_buf = [0u8; 256];
    let mut drain_until: Option<Instant> = None;
    let mut dirty: Vec<u64> = Vec::new();

    loop {
        let now = Instant::now();
        if !el.stopping && stop.load(Ordering::SeqCst) {
            // Stop: unregister the listener, stop reading everywhere, and
            // give queued + in-flight work until the drain deadline.
            el.stopping = true;
            drain_until = Some(now + el.cfg.drain_deadline);
            let _ = el.epoll.delete(el.listener.as_raw_fd());
            let tokens: Vec<u64> = el.conns.keys().copied().collect();
            for t in tokens {
                el.pump(t);
            }
        }
        if el.stopping {
            if el.conns.is_empty() {
                break;
            }
            if drain_until.is_some_and(|d| now >= d) {
                break;
            }
        }

        let timeout = el.poll_timeout(now, drain_until);
        let n = match el.epoll.wait(&mut events, timeout) {
            Ok(n) => n,
            Err(_) => break,
        };
        let now = Instant::now();
        dirty.clear();
        for ev in &events[..n] {
            // Copy out of the packed struct before use.
            let token = ev.token;
            let bits = ev.events;
            match token {
                LISTENER_TOKEN => el.accept_ready(now),
                WAKE_TOKEN => {
                    while matches!((&wake_rx).read(&mut wake_buf), Ok(n) if n > 0) {}
                }
                t => {
                    el.conn_event(t, bits, now);
                    dirty.push(t);
                }
            }
        }

        // Completions answered since the last drain. The gauge decrements
        // even when the connection died mid-flight — the request is no
        // longer in the pipeline either way.
        for (token, response) in el.notifier.drain() {
            el.frontend.pipelined_inflight.fetch_sub(1, Ordering::Relaxed);
            if let Some(conn) = el.conns.get_mut(&token) {
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.enqueue(encode_line(&response));
                dirty.push(token);
            }
        }

        // Idle reaping, lazily: a due entry whose connection has been
        // active since it was filed is simply re-filed under the real
        // deadline — activity never pays a cancellation.
        if let Some(idle) = el.cfg.idle_timeout {
            for entry in el.timers.due(now) {
                let Some(conn) = el.conns.get(&entry.token) else { continue };
                let deadline = conn.last_activity + idle;
                if deadline <= now {
                    el.close(entry.token);
                } else {
                    el.timers.schedule(entry.token, deadline);
                }
            }
        }

        dirty.sort_unstable();
        dirty.dedup();
        for i in 0..dirty.len() {
            el.pump(dirty[i]);
        }
    }
}

impl EventLoop {
    /// The `epoll_wait` bound: the poll tick, capped by the next timer
    /// deadline and the drain deadline.
    fn poll_timeout(&self, now: Instant, drain_until: Option<Instant>) -> i32 {
        let mut cap = self.cfg.read_timeout;
        if let Some(d) = drain_until {
            cap = cap.min(d.saturating_duration_since(now));
        }
        if self.cfg.idle_timeout.is_some() {
            if let Some(due) = self.timers.next_due(now) {
                cap = cap.min(due);
            }
        }
        (cap.as_millis() as i64).clamp(1, 60_000) as i32
    }

    fn accept_ready(&mut self, now: Instant) {
        if self.stopping {
            return;
        }
        for _ in 0..ACCEPT_BATCH {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // One response is one small write; Nagle holding it back pairs
            // with the peer's delayed ACK into a ~40 ms stall per frame.
            stream.set_nodelay(true).ok();
            if self.conns.len() >= self.cfg.max_connections {
                // One honest refusal beats a silent close: the client
                // learns this is load, not a crash. The socket is fresh,
                // so a single nonblocking write fits its empty buffer.
                let resp =
                    Response::unavailable(None, "server is at its connection cap, retry later");
                let _ = (&stream).write_all(&encode_line(&resp));
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                continue;
            }
            let mut conn = Conn::new(stream, MAX_LINE_BYTES, now);
            conn.registered_interest = EPOLLIN;
            self.frontend.open_conns.fetch_add(1, Ordering::Relaxed);
            if let Some(idle) = self.cfg.idle_timeout {
                self.timers.schedule(token, now + idle);
            }
            self.conns.insert(token, conn);
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32, now: Instant) {
        if !self.conns.contains_key(&token) {
            return;
        }
        // ERR/HUP mean the peer is fully gone (reset or closed both
        // halves); nothing queued can be delivered. They are reported
        // regardless of registered interest, so a backpressured connection
        // must close here or it would spin on the level trigger.
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(token);
            return;
        }
        if bits & EPOLLIN != 0 {
            self.read_ready(token, now);
        }
        // EPOLLOUT needs no handling here: `pump` flushes every dirty
        // connection after the event sweep.
    }

    /// Reads everything the socket has (bounded per event for fairness)
    /// into the connection's frame decoder.
    fn read_ready(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0usize;
        let mut failed = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = now;
                    conn.decoder.push(&buf[..n]);
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            self.close(token);
            return;
        }
        if total > 0 && self.conns.get(&token).is_some_and(|c| c.decoder.has_partial()) {
            self.frontend.frames_partial.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The per-connection state machine, run after any event touches a
    /// connection: claim decoded frames up to the in-flight quota, flush
    /// queued output, close if every obligation is met, and reconcile
    /// epoll interest with what the connection now wants.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if !self.stopping {
            while conn.inflight < self.cfg.max_inflight_per_conn {
                let event = match conn.decoder.next_event() {
                    Some(ev) => Some(ev),
                    // EOF with an unterminated tail: the old core answered
                    // a mid-line disconnect best-effort rather than
                    // silently closing; `finish` is idempotent.
                    None if conn.eof => conn.decoder.finish(),
                    None => None,
                };
                match event {
                    Some(FrameEvent::Oversized(err)) => {
                        let resp =
                            Response::error_kind(None, ErrorKind::BadRequest, err.to_string());
                        conn.enqueue(encode_line(&resp));
                    }
                    Some(FrameEvent::Frame(bytes)) => {
                        let text = String::from_utf8_lossy(&bytes);
                        if text.trim().is_empty() {
                            continue;
                        }
                        conn.inflight += 1;
                        self.frontend.pipelined_inflight.fetch_add(1, Ordering::Relaxed);
                        let notifier = Arc::clone(&self.notifier);
                        self.engine
                            .submit_line_async(&text, move |resp| notifier.complete(token, resp));
                    }
                    None => break,
                }
            }
        }
        let mut failed = false;
        if conn.has_output() && flush_conn(conn, &self.frontend).is_err() {
            failed = true;
        }
        let drained = conn.is_drained() && conn.decoder.pending_events() == 0;
        let done = (conn.eof && drained)
            || (conn.close_after_flush && !conn.has_output())
            || (self.stopping && drained);
        if failed || done {
            self.close(token);
            return;
        }
        let mut want = 0u32;
        if !self.stopping
            && conn.wants_read(self.cfg.max_inflight_per_conn, self.cfg.write_buffer_cap)
        {
            want |= EPOLLIN;
        }
        if conn.has_output() {
            want |= EPOLLOUT;
        }
        if want != conn.registered_interest
            && self.epoll.modify(conn.stream.as_raw_fd(), want, token).is_ok()
        {
            conn.registered_interest = want;
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.frontend.open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Flushes as much queued output as the socket accepts, in `writev`
/// batches. Returns `Err` only for a dead socket — `WouldBlock` simply
/// leaves the rest for the next writable event.
fn flush_conn(conn: &mut Conn, frontend: &FrontendStats) -> std::io::Result<()> {
    while conn.has_output() {
        let written = {
            let slices = conn.out_slices();
            sys::writev_once(conn.stream.as_raw_fd(), &slices)?
        };
        if written == 0 {
            break;
        }
        let before = conn.out.len();
        conn.consume_out(written);
        if before.saturating_sub(conn.out.len()) >= 2 {
            frontend.writev_batches.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}
