//! A hashed timer wheel for connection deadlines.
//!
//! The event loop needs thousands of idle-timeout deadlines that are
//! almost always *cancelled* (any byte of activity pushes a connection's
//! deadline out). A heap would pay `O(log n)` per reschedule; the wheel
//! pays nothing — deadlines are **lazy**. A connection is inserted once
//! per armed deadline; when its slot comes up, the caller checks the
//! connection's *current* deadline and either expires it or hands the
//! entry back to be re-filed under the new time. Stale entries therefore
//! cost one wasted slot visit instead of a cancellation data structure.
//!
//! Time is measured in ticks of [`TimerWheel::tick`] from wheel creation.
//! Deadlines farther out than one wheel revolution are simply re-filed
//! when their slot comes around early — correctness never depends on the
//! horizon, only efficiency does.

use std::time::{Duration, Instant};

/// One scheduled entry: an opaque token (the event loop's connection id)
/// and the absolute deadline it was filed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled {
    /// The caller's token.
    pub token: u64,
    /// The deadline this entry was filed under. The caller compares it
    /// with the connection's current deadline to detect staleness.
    pub deadline: Instant,
}

/// The wheel. Not thread-safe by design — it lives on the event loop.
pub struct TimerWheel {
    slots: Vec<Vec<Scheduled>>,
    tick: Duration,
    epoch: Instant,
    /// Index of the next tick to drain (monotonic, not wrapped).
    cursor: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, `tick` apart (horizon = `slots × tick`).
    pub fn new(slots: usize, tick: Duration) -> Self {
        assert!(slots >= 2, "TimerWheel: need at least 2 slots");
        assert!(!tick.is_zero(), "TimerWheel: tick must be non-zero");
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            epoch: Instant::now(),
            cursor: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let since = t.saturating_duration_since(self.epoch);
        (since.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Files `token` under `deadline`. Deadlines already in the past land
    /// in the next drained slot.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        // Never file under an already-drained tick, or the entry would
        // wait a full revolution before being seen.
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Scheduled { token, deadline });
    }

    /// Drains every slot whose tick has passed by `now`, returning the
    /// entries filed there. The caller decides per entry: expired, stale
    /// (reschedule under the current deadline), or dead (drop). Entries
    /// filed for a future revolution of the same slot are handed back too
    /// — reschedule them; the wheel does not track revolutions.
    pub fn due(&mut self, now: Instant) -> Vec<Scheduled> {
        let target = self.tick_of(now);
        let mut out = Vec::new();
        // Bound one call to a single revolution: visiting a slot twice in
        // one drain would only re-collect entries just handed back.
        let steps = (target.saturating_sub(self.cursor) + 1).min(self.slots.len() as u64);
        for _ in 0..steps {
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            out.append(&mut self.slots[slot]);
            if self.cursor >= target {
                break;
            }
            self.cursor += 1;
        }
        self.cursor = self.cursor.max(target);
        out
    }

    /// How long until the next occupied slot comes due — the event loop's
    /// poll timeout. `None` when the wheel is empty.
    pub fn next_due(&self, now: Instant) -> Option<Duration> {
        let mut soonest: Option<Instant> = None;
        for slot in &self.slots {
            for entry in slot {
                soonest = Some(match soonest {
                    Some(s) => s.min(entry.deadline),
                    None => entry.deadline,
                });
            }
        }
        soonest.map(|s| s.saturating_duration_since(now))
    }

    /// Entries currently filed (stale ones included).
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Whether no entries are filed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_entries_surface_once_their_tick_passes() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        wheel.schedule(1, now + Duration::from_millis(25));
        wheel.schedule(2, now + Duration::from_millis(250));
        assert!(wheel.due(now).is_empty(), "nothing is due yet");
        let due = wheel.due(now + Duration::from_millis(40));
        assert!(due.iter().any(|s| s.token == 1), "token 1 is past due: {due:?}");
        // Token 2 may surface early (same slot, later revolution) — the
        // caller reschedules; it must not be *lost*.
        let survivors: Vec<_> = due.iter().filter(|s| s.token == 2).collect();
        for s in survivors {
            wheel.schedule(s.token, s.deadline);
        }
        let due = wheel.due(now + Duration::from_millis(400));
        assert!(due.iter().any(|s| s.token == 2));
    }

    #[test]
    fn past_deadlines_land_in_the_next_drain() {
        let mut wheel = TimerWheel::new(4, Duration::from_millis(5));
        let now = Instant::now();
        wheel.due(now + Duration::from_millis(50)); // advance the cursor
        wheel.schedule(7, now); // long past
        let due = wheel.due(now + Duration::from_millis(56));
        assert!(due.iter().any(|s| s.token == 7), "past deadline must still fire: {due:?}");
    }

    #[test]
    fn next_due_reports_the_soonest_deadline() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        assert_eq!(wheel.next_due(now), None);
        wheel.schedule(1, now + Duration::from_millis(80));
        wheel.schedule(2, now + Duration::from_millis(30));
        let next = wheel.next_due(now).unwrap();
        assert!(next <= Duration::from_millis(30), "{next:?}");
    }

    #[test]
    fn drain_is_bounded_to_one_revolution() {
        let mut wheel = TimerWheel::new(4, Duration::from_millis(1));
        let now = Instant::now();
        wheel.schedule(1, now + Duration::from_millis(2));
        // A huge time jump must terminate and still surface the entry.
        let due = wheel.due(now + Duration::from_secs(3600));
        assert_eq!(due.len(), 1);
        assert!(wheel.is_empty());
    }
}
