//! The wire protocol: newline-delimited JSON, one request per line, one
//! response per line.
//!
//! Requests are flat maps — an `op` discriminator plus optional operand
//! fields — rather than tagged unions, so any language's JSON library can
//! speak the protocol with one object literal:
//!
//! ```text
//! {"op":"Predict","user":3,"item":7}
//! {"op":"Recommend","user":3,"k":5,"deadline_ms":50,"id":42}
//! {"op":"Explain","item":7,"k":3}
//! {"op":"Invalidate","user":3,"item":7}
//! {"op":"Stats"}
//! ```
//!
//! Responses echo the optional client-chosen `id`, carry `ok`/`error`, and
//! populate exactly one payload field per op. `serde_json` in this
//! workspace never emits raw newlines inside a document (control characters
//! are always escaped), so one encoded response is always one line.

use crate::stats::StatsSnapshot;
use rrre_core::{Explanation, Prediction, Recommendation};
use serde::{Deserialize, Serialize};

/// Hard cap on one request line's byte length. Lines past this bound are
/// answered with a structured error and discarded instead of being
/// buffered without limit — a single client cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 16 * 1024;

/// The exhaustive set of accepted request fields. `decode_request` rejects
/// anything else: a typo like `"deadine_ms"` must fail loudly instead of
/// being silently dropped and serving with no deadline at all.
const REQUEST_FIELDS: [&str; 6] = ["id", "op", "user", "item", "k", "deadline_ms"];

/// Request discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Rating + reliability for one `(user, item)` pair.
    Predict,
    /// Top-`k` items for `user` (§III-B two-stage ranking).
    Recommend,
    /// Up to `k` reliable explanation reviews for `item`.
    Explain,
    /// Engine counters.
    Stats,
    /// Drop cached tower representations for `user` and/or `item` — call
    /// after an entity gains a review.
    Invalidate,
    /// Re-load the artifact from its source directory and, if it validates,
    /// atomically swap it in as the next generation. A failed load leaves
    /// the current generation serving untouched.
    Reload,
    /// Deliberately panic inside the worker (supervision/breaker drills).
    /// Refused unless the engine was built with
    /// [`crate::EngineConfig::fault_injection`].
    Crash,
}

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// What to do.
    pub op: Op,
    /// Target user (`Predict`, `Recommend`, `Invalidate`).
    pub user: Option<u32>,
    /// Target item (`Predict`, `Explain`, `Invalidate`).
    pub item: Option<u32>,
    /// Result count (`Recommend`, `Explain`).
    pub k: Option<usize>,
    /// Per-request deadline, measured from enqueue. A request still queued
    /// when it expires is answered with an error instead of being served.
    pub deadline_ms: Option<u64>,
}

impl Request {
    fn bare(op: Op) -> Self {
        Self { id: None, op, user: None, item: None, k: None, deadline_ms: None }
    }

    /// A `Predict` request.
    pub fn predict(user: u32, item: u32) -> Self {
        Self { user: Some(user), item: Some(item), ..Self::bare(Op::Predict) }
    }

    /// A `Recommend` request.
    pub fn recommend(user: u32, k: usize) -> Self {
        Self { user: Some(user), k: Some(k), ..Self::bare(Op::Recommend) }
    }

    /// An `Explain` request.
    pub fn explain(item: u32, k: usize) -> Self {
        Self { item: Some(item), k: Some(k), ..Self::bare(Op::Explain) }
    }

    /// A `Stats` request.
    pub fn stats() -> Self {
        Self::bare(Op::Stats)
    }

    /// A `Reload` request.
    pub fn reload() -> Self {
        Self::bare(Op::Reload)
    }

    /// An `Invalidate` request for a user and/or an item.
    pub fn invalidate(user: Option<u32>, item: Option<u32>) -> Self {
        Self { user, item, ..Self::bare(Op::Invalidate) }
    }

    /// Returns the request with a correlation id attached.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }
}

/// `Predict` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionDto {
    /// Predicted rating `r̂ ∈ [1, 5]`.
    pub rating: f32,
    /// Predicted reliability `l̂ ∈ [0, 1]`.
    pub reliability: f32,
}

impl From<Prediction> for PredictionDto {
    fn from(p: Prediction) -> Self {
        Self { rating: p.rating, reliability: p.reliability }
    }
}

/// One `Recommend` result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendationDto {
    /// Recommended item id.
    pub item: u32,
    /// Item display name.
    pub item_name: String,
    /// Predicted rating.
    pub rating: f32,
    /// Predicted reliability.
    pub reliability: f32,
}

impl From<Recommendation> for RecommendationDto {
    fn from(r: Recommendation) -> Self {
        Self { item: r.item.0, item_name: r.item_name, rating: r.rating, reliability: r.reliability }
    }
}

/// One `Explain` result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplanationDto {
    /// Index of the review in the dataset.
    pub review_idx: usize,
    /// Authoring user id.
    pub user: u32,
    /// Author display name.
    pub user_name: String,
    /// Review text.
    pub text: String,
    /// Predicted rating of the pair.
    pub rating: f32,
    /// Predicted reliability of the review.
    pub reliability: f32,
    /// Whether the §IV-F pipeline filters this review for low reliability.
    pub filtered: bool,
}

impl From<Explanation> for ExplanationDto {
    fn from(e: Explanation) -> Self {
        Self {
            review_idx: e.review_idx,
            user: e.user.0,
            user_name: e.user_name,
            text: e.text,
            rating: e.rating,
            reliability: e.reliability,
            filtered: e.filtered,
        }
    }
}

/// Machine-readable classification of a refused request, so clients can
/// implement retry policy without parsing error strings: `Overloaded` and
/// `Unavailable` are retryable after backoff, the rest are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request itself is malformed or references unknown entities.
    BadRequest,
    /// Shed before processing: the submission queue was full.
    Overloaded,
    /// The circuit breaker is open (or the server is at its connection
    /// cap); the engine is protecting itself.
    Unavailable,
    /// The worker failed while processing this request (e.g. a caught
    /// panic); the request may or may not be safe to retry.
    Internal,
    /// The request's deadline passed while it was queued.
    DeadlineExceeded,
}

/// One response line. Exactly one payload field is populated on success;
/// all are `null` on error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id echoed from the request (absent for parse errors).
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: Option<String>,
    /// Error classification when `ok` is false (absent on legacy paths
    /// that predate the taxonomy).
    pub kind: Option<ErrorKind>,
    /// Artifact generation that served this request (success paths only).
    pub generation: Option<u64>,
    /// `Predict` payload.
    pub prediction: Option<PredictionDto>,
    /// `Recommend` payload.
    pub recommendations: Option<Vec<RecommendationDto>>,
    /// `Explain` payload.
    pub explanations: Option<Vec<ExplanationDto>>,
    /// `Stats` payload.
    pub stats: Option<StatsSnapshot>,
    /// `Invalidate` payload: number of cache entries evicted.
    pub evicted: Option<u64>,
}

impl Response {
    /// An empty success response (payload to be filled by the caller).
    pub fn ok(id: Option<u64>) -> Self {
        Self {
            id,
            ok: true,
            error: None,
            kind: None,
            generation: None,
            prediction: None,
            recommendations: None,
            explanations: None,
            stats: None,
            evicted: None,
        }
    }

    /// An error response (no machine-readable kind; prefer the dedicated
    /// constructors on new code paths).
    pub fn error(id: Option<u64>, message: impl Into<String>) -> Self {
        Self { ok: false, error: Some(message.into()), ..Self::ok(id) }
    }

    /// An error response with an explicit [`ErrorKind`].
    pub fn error_kind(id: Option<u64>, kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind: Some(kind), ..Self::error(id, message) }
    }

    /// The structured shed response for a full submission queue.
    pub fn overloaded(id: Option<u64>) -> Self {
        Self::error_kind(id, ErrorKind::Overloaded, "overloaded: submission queue is full, retry with backoff")
    }

    /// The structured refusal for an open circuit breaker or a saturated
    /// connection cap.
    pub fn unavailable(id: Option<u64>, why: impl Into<String>) -> Self {
        Self::error_kind(id, ErrorKind::Unavailable, why)
    }

    /// The structured reply for a worker-side failure.
    pub fn internal(id: Option<u64>, why: impl Into<String>) -> Self {
        Self::error_kind(id, ErrorKind::Internal, why)
    }
}

/// Encodes a response as one protocol line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    serde_json::to_string(resp).expect("Response serialisation cannot fail")
}

/// Decodes one request line.
///
/// Rejects, with a structured message: lines over [`MAX_LINE_BYTES`],
/// non-object documents, unknown fields, and anything `Request`'s own
/// deserializer refuses (missing/mistyped `op`, wrong value types).
pub fn decode_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.len() > MAX_LINE_BYTES {
        return Err(format!("request line exceeds {MAX_LINE_BYTES} bytes ({} bytes)", line.len()));
    }
    let value: serde_json::Value = serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))?;
    let serde_json::Value::Map(fields) = &value else {
        return Err("bad request: expected a JSON object".into());
    };
    for (key, _) in fields {
        if !REQUEST_FIELDS.contains(&key.as_str()) {
            return Err(format!("bad request: unknown field `{key}`"));
        }
    }
    serde_json::from_value(&value).map_err(|e| format!("bad request: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_lines_parse() {
        let r = decode_request(r#"{"op":"Predict","user":3,"item":7}"#).unwrap();
        assert_eq!(r.op, Op::Predict);
        assert_eq!((r.user, r.item), (Some(3), Some(7)));
        assert_eq!(r.id, None);
        assert_eq!(r.deadline_ms, None);

        let r = decode_request(r#"{"op":"Stats"}"#).unwrap();
        assert_eq!(r.op, Op::Stats);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = decode_request(r#"{"op":"Frobnicate"}"#).unwrap_err();
        assert!(err.contains("Frobnicate"), "unhelpful error: {err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(decode_request("{not json").is_err());
        assert!(decode_request("").is_err());
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = decode_request(r#"{"op":"Predict","user":3,"item":7,"deadine_ms":50}"#).unwrap_err();
        assert!(err.contains("deadine_ms"), "unhelpful error: {err}");
    }

    #[test]
    fn non_object_documents_are_rejected() {
        assert!(decode_request("[1,2,3]").unwrap_err().contains("object"));
        assert!(decode_request("42").unwrap_err().contains("object"));
        assert!(decode_request(r#""Predict""#).unwrap_err().contains("object"));
    }

    #[test]
    fn oversized_lines_are_rejected_with_the_limit_in_the_message() {
        let line = format!(r#"{{"op":"Stats{}"}}"#, " ".repeat(MAX_LINE_BYTES));
        let err = decode_request(&line).unwrap_err();
        assert!(err.contains(&MAX_LINE_BYTES.to_string()), "unhelpful error: {err}");
    }

    #[test]
    fn request_roundtrips() {
        let r = Request::recommend(5, 10).with_id(99);
        let line = serde_json::to_string(&r).unwrap();
        assert!(!line.contains('\n'), "protocol lines must be single-line");
        let back = decode_request(&line).unwrap();
        assert_eq!(back.op, Op::Recommend);
        assert_eq!((back.user, back.k, back.id), (Some(5), Some(10), Some(99)));
    }

    #[test]
    fn response_roundtrips_with_payload() {
        let mut resp = Response::ok(Some(7));
        resp.prediction = Some(PredictionDto { rating: 4.25, reliability: 0.5 });
        let line = encode_response(&resp);
        assert!(!line.contains('\n'));
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.id, Some(7));
        assert_eq!(back.prediction.unwrap(), PredictionDto { rating: 4.25, reliability: 0.5 });
    }

    #[test]
    fn error_responses_carry_the_message() {
        let resp = Response::error(None, "deadline exceeded");
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("deadline exceeded"));
        assert!(back.prediction.is_none());
    }
}
