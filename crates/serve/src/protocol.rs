//! The wire protocol — re-exported from [`rrre_wire`].
//!
//! The request/response types moved to their own crate so the resilient
//! client (`rrre-client`) can speak the protocol without linking the
//! serving stack; every path that used to live here
//! (`rrre_serve::protocol::Request`, …) keeps working through this
//! re-export.

pub use rrre_wire::*;
