//! `rrre-serve` — train, serve and query RRRE artifacts from the shell.
//!
//! ```text
//! rrre-serve demo <dir> [--scale F]          train a small model, save an artifact
//! rrre-serve train <dir> [...]               crash-safe training with checkpoints
//! rrre-serve serve <dir> [--addr A] [...]    serve an artifact over TCP (NDJSON)
//! rrre-serve query <addr> <json-line>        send one request, resiliently
//! rrre-serve oneshot <dir> <json-line>       answer one request in-process, no server
//! rrre-serve burst --replicas a,b,c [...]    drive a request burst through the client
//! rrre-serve attack-eval [--out FILE] [...]  robustness grid under fraud campaigns
//! ```

use rrre_client::{
    Client, ClientConfig, ClientError, IngestSequencer, Pipelined, PipelinedClient, ShardedClient,
};
use rrre_core::{run_robustness_sweep, AttackEvalConfig, CheckpointConfig, EpochStats, Rrre, RrreConfig};
use rrre_data::synth::{generate, AttackCampaign, AttackFamily, SynthConfig};
use rrre_data::{CorpusConfig, Dataset, EncodedCorpus};
use rrre_serve::protocol::{decode_request, encode_response};
use rrre_serve::wal::FsyncPolicy;
use rrre_serve::{
    AckLevel, Engine, EngineConfig, IngestConfig, ModelArtifact, ReplRole, ReplicationConfig,
    Server, ServerConfig,
};
use rrre_shard::ShardTopology;
use rrre_text::word2vec::Word2VecConfig;
use rrre_wire::{Request, Response, ShardSpec};
use std::collections::HashMap;
use std::io::{BufRead, IsTerminal};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "\
rrre-serve: inference serving for the RRRE model

USAGE:
  rrre-serve demo <dir> [--scale F] [--shards N]
      Generate a synthetic YelpChi-like dataset (default --scale 0.05),
      train a small RRRE model and write a serving artifact to <dir>.
      --shards N (default 1) records an N-way consistent-hash shard spec
      in the manifest; every shard's replicas serve from this one artifact.

  rrre-serve train <dir> [--scale F] [--epochs N] [--every N] [--threads N]
                         [--resume] [--abort-after-epoch N]
      Crash-safe training over the same synthetic dataset: atomic
      checkpoints into <dir> every --every epochs (default 1). --resume
      continues from the newest checkpoint in <dir>, bit-identically to an
      uninterrupted run. --abort-after-epoch N exits with status 137 right
      after epoch N's checkpoint lands — a scripted SIGKILL for crash
      drills. --threads N (default $RRRE_THREADS, else 1) trains
      data-parallel; every thread count yields the same bits, so a run may
      resume with a different count. The final stdout line carries the
      exact loss bits.

  rrre-serve serve <dir> [--addr HOST:PORT] [--shard-id N] [--workers N]
                         [--max-batch N] [--max-wait-ms N] [--queue-cap N]
                         [--max-conns N] [--read-timeout-ms N] [--drain-ms N]
                         [--idle-timeout-ms N] [--max-inflight N]
                         [--write-buf-kb N] [--ingest] [--segment-kb N]
                         [--fsync-batch N] [--refresh-every N]
                         [--cold-start-min N]
                         [--followers a,b | --replicate-from ADDR]
                         [--ack leader|quorum] [--epoch N]
                         [--quorum-timeout-ms N]
      Load the artifact in <dir> and serve newline-delimited JSON over TCP
      (default --addr 127.0.0.1:7878). One epoll event loop multiplexes
      every connection; requests pipeline per connection up to
      --max-inflight (default 64), --write-buf-kb (default 256) bounds
      queued response bytes per connection before reads pause, and
      --idle-timeout-ms reaps silent connections (default: never).
      --shard-id N scopes this replica to
      shard N of the manifest's shard map: it answers only for entities it
      owns (WrongShard otherwise) and scores only its own catalog slice on
      Recommend; omit it for the whole-model fallback. --ingest enables
      durable streaming ingest: IngestReview appends to a checksummed WAL
      under <dir>/wal (fsync per record; an ack is a durability promise),
      refreshed into the serving towers every --refresh-every records
      (default 1; 0 = only on Compact), and Compact folds the WAL into a
      new artifact generation. On startup --ingest replays the WAL (torn
      tails repaired, mid-log corruption refuses to start) and completes
      any interrupted compaction. --fsync-batch N relaxes to one fsync per
      N records (benchmarking only — acks between syncs are not yet
      durable). --segment-kb sets WAL rotation (default 4096).
      --cold-start-min N answers thin pairs (either side under N reviews)
      with a calibrated reliability prior instead of the head score.
      Replication (needs --ingest): --followers a,b starts this replica as
      the shard's ingest leader, shipping its WAL to the listed follower
      addresses; --replicate-from ADDR starts it as a follower of ADDR
      (refuses client ingest with NotLeader, applies Replicate shipments,
      pulls catch-up ranges after restart). --ack quorum (the default when
      replicating) releases each ingest ack only once a majority of the
      replica set holds the record durably; --ack leader keeps single-copy
      acks. --epoch N (default 1) sets the leader's starting term — a
      higher persisted term from a previous incarnation always wins — and
      --quorum-timeout-ms (default 5000) bounds how long an ack may wait
      for quorum before refusing Unavailable (retry-safe: the record stays
      durable on the leader and the retry dedups).
      Stdin verbs: `quit` stops the server gracefully, `reload` hot-swaps
      the artifact from <dir>, `compact` folds the WAL now, `stats` prints
      the counters, `health` prints liveness/readiness. On stdin EOF
      (detached/daemonized) it keeps serving until killed.

  rrre-serve shardmap <dir> --replicas \"a,b;c,d;e,f\"
      Print a shard-topology JSON document (for --shard-map) binding the
      artifact's shard spec to replica endpoints: shard lists separated by
      `;`, replicas within a shard by `,`. The list count must match the
      manifest's shard count.

  rrre-serve ingest (<addr> | --replicas a,b,c | --shard-map FILE)
                    --count N [--seq-start S] [--users N] [--items N]
                    [--campaign FAMILY] [--attack-seed N] [CLIENT FLAGS]
      Stream N reviews through the resilient client with the ingest
      sequencer: review k carries seq S+k (default S=0) and a payload
      derived deterministically from its seq, so re-running the same
      command replays byte-identical reviews — the server acks replays as
      duplicates without re-applying (exactly-once drills). Prints one
      `seq=K duplicate=BOOL` line per ack and a machine-readable summary.
      Exits nonzero if any review failed to ack.
      --campaign FAMILY (template|ramp|burst|mimicry) replaces the bland
      seq-derived payloads with a seeded fraud campaign confined to the
      --users/--items id space (sybils squat the tail of the user range) —
      the ingest-under-attack drill for the serving tier's cold-start
      prior and incremental refresh. --attack-seed N (default 0xA77AC4)
      pins the campaign; payloads stay a pure function of the flags, so
      replays still dedup.

  rrre-serve attack-eval [--out FILE] [--scale F] [--families a,b,c]
                         [--strengths x,y,z] [--epochs N] [--threads N]
                         [--seed N]
      Train-on-poisoned / evaluate-on-clean robustness sweep: for every
      attack family × strength cell, inject a seeded fraud campaign into
      the synthetic YelpChi-like base (default --scale 0.05), re-train the
      model on the label-poisoned corpus, and evaluate on the clean
      held-out test set. Emits the Table-IV-style CSV grid (reliability-AP
      degradation and rating-RMSE poisoning per cell) to stdout and, with
      --out, to FILE. Families default to all four
      (template,ramp,burst,mimicry), strengths to 0.1,0.25,0.5, --seed
      (default 0xA77AC4) pins the campaigns. The sweep is bit-identical
      per seed at every --threads count; CI diffs the emitted grid against
      the committed results/adversarial_grid.csv.

  rrre-serve compact (<addr> | --replicas a,b,c | --shard-map FILE)
                     [CLIENT FLAGS]
      Fold the WAL into a new artifact generation on every shard
      (broadcast) and print what was folded.

  rrre-serve promote <addr> --epoch N [--peers a,b] [CLIENT FLAGS]
      Install the replica at <addr> as its shard's ingest leader under
      term N (which must exceed its current term), shipping to the
      --peers follower addresses. The new term fences the old leader:
      its Replicate/IngestReview traffic is refused with StaleEpoch.

  rrre-serve query <addr> <json-line> [CLIENT FLAGS]
  rrre-serve query --replicas a,b,c <json-line> [CLIENT FLAGS]
      Send one request through the resilient client (retries, failover,
      breakers) and print the response. With --replicas, the request fails
      over across all listed endpoints instead of targeting one <addr>.

  rrre-serve oneshot <dir> <json-line>
  rrre-serve oneshot --replicas a,b,c <json-line> [CLIENT FLAGS]
      Answer a single request: in-process from the artifact in <dir>, or —
      with --replicas — over the network through the resilient client.

  rrre-serve burst (--replicas a,b,c | --shard-map FILE)
                   [--requests N] [--gap-ms N] [--users N] [--items N]
                   [--recommend-k K] [--open-loop] [--rate R]
                   [--concurrency N] [--pipeline-depth D] [--conns N]
                   [--json] [--probe-interval-ms N] [CLIENT FLAGS]
      Drive N requests (default 100; Predicts cycling under --users/--items,
      or Recommends with --recommend-k K) through the resilient client —
      flat with --replicas, shard-routed scatter-gather with --shard-map.
      Default is closed-loop (--gap-ms between completions); --open-loop
      fires on a fixed schedule of --rate req/s (default 200) from
      --concurrency workers (default 8), which keeps arrival times honest
      under slow replicas. --pipeline-depth D and/or --conns N switch to
      the pipelined open-loop mode (needs --replicas): N raw connections
      (round-robin over the replica list) each keep up to D requests in
      flight on one socket, matching responses by correlation id — no
      retries, no failover. Prints per-replica lines, p50/p99 latency and
      throughput; --json emits one machine-readable summary line. Exits
      nonzero if any request failed client-visibly (degraded answers are
      not failures). Health probes are on by default (100 ms).

  CLIENT FLAGS (query/oneshot/burst):
      --replicas a,b,c      comma-separated replica endpoints
      --shard-map FILE      shard-topology JSON (see `shardmap`); routes by
                            shard and scatter-gathers ranking queries
      --retries N           extra attempts per request (default 2)
      --timeout-ms N        per-attempt timeout, also sent as deadline_ms
                            (a scatter splits it across its sub-requests)
      --hedge-after-ms N    hedge idempotent requests after this latency
      --seed N              jitter-RNG seed (fixed seed = fixed schedule)

PROTOCOL (one JSON object per line):
  {\"op\":\"Predict\",\"user\":3,\"item\":7}
  {\"op\":\"Recommend\",\"user\":3,\"k\":5}
  {\"op\":\"Explain\",\"item\":7,\"k\":3}
  {\"op\":\"Invalidate\",\"user\":3}
  {\"op\":\"Reload\"}
  {\"op\":\"Stats\"}
  {\"op\":\"Health\"}
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("rrre-serve: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

/// Operator-facing error: print cleanly, no panic backtrace.
fn die(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("rrre-serve: {msg}");
    ExitCode::FAILURE
}

/// Pulls `--flag value` out of `args`, leaving positional arguments.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("rrre-serve: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Pulls a bare `--flag` out of `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Parses a flag value, or exits with a clean message instead of a panic.
fn parse_flag<T: std::str::FromStr>(value: Option<String>, flag: &str, default: T) -> T {
    match value {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("rrre-serve: {flag} got `{s}`, which does not parse");
            std::process::exit(2);
        }),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "demo" => cmd_demo(args),
        "train" => cmd_train(args),
        "serve" => cmd_serve(args),
        "shardmap" => cmd_shardmap(args),
        "ingest" => cmd_ingest(args),
        "attack-eval" => cmd_attack_eval(args),
        "compact" => cmd_compact(args),
        "promote" => cmd_promote(args),
        "query" => cmd_query(args),
        "oneshot" => cmd_oneshot(args),
        "burst" => cmd_burst(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown subcommand `{other}`")),
    }
}

/// The deterministic synthetic training setup shared by `demo` and `train`
/// — both runs of a crash drill must see the identical dataset and corpus.
fn synth_corpus(scale: f64, max_len: usize, dim: usize, w2v_epochs: usize) -> (Dataset, EncodedCorpus, u64) {
    let ds = generate(&SynthConfig::yelp_chi().scaled(scale));
    let corpus_cfg = CorpusConfig {
        max_len,
        word2vec: Word2VecConfig { dim, epochs: w2v_epochs, ..Default::default() },
        ..Default::default()
    };
    let corpus = EncodedCorpus::build(&ds, &corpus_cfg);
    (ds, corpus, corpus_cfg.min_count)
}

fn cmd_demo(mut args: Vec<String>) -> ExitCode {
    let scale: f64 = parse_flag(take_flag(&mut args, "--scale"), "--scale", 0.05);
    let shards: u32 = parse_flag(take_flag(&mut args, "--shards"), "--shards", 1);
    if shards == 0 {
        return fail("--shards must be ≥ 1");
    }
    let [dir] = args.as_slice() else {
        return fail("demo needs exactly one <dir>");
    };

    eprintln!("generating synthetic dataset (scale {scale})...");
    let (ds, corpus, min_count) = synth_corpus(scale, 16, 16, 2);
    eprintln!(
        "training on {} reviews ({} users x {} items)...",
        ds.len(),
        ds.n_users,
        ds.n_items
    );
    let train: Vec<usize> = (0..ds.len()).collect();
    let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 5, ..RrreConfig::tiny() });
    let spec = ShardSpec::with_shards(shards);
    if let Err(e) = ModelArtifact::save_with_shards(dir, &ds, &corpus, &model, min_count, spec) {
        return die(format!("failed to write artifact to `{dir}`: {e}"));
    }
    if shards > 1 {
        println!("artifact written to {dir} ({shards}-way shard map, version {})", spec.version);
    } else {
        println!("artifact written to {dir}");
    }
    println!("next: rrre-serve serve {dir}");
    println!("then: rrre-serve query 127.0.0.1:7878 '{{\"op\":\"Recommend\",\"user\":0,\"k\":3}}'");
    ExitCode::SUCCESS
}

fn cmd_train(mut args: Vec<String>) -> ExitCode {
    let scale: f64 = parse_flag(take_flag(&mut args, "--scale"), "--scale", 0.04);
    let epochs: usize = parse_flag(take_flag(&mut args, "--epochs"), "--epochs", 4);
    let every: usize = parse_flag(take_flag(&mut args, "--every"), "--every", 1);
    let abort_after: Option<usize> =
        take_flag(&mut args, "--abort-after-epoch").map(|s| parse_flag(Some(s), "--abort-after-epoch", 0));
    let threads: usize = parse_flag(
        take_flag(&mut args, "--threads"),
        "--threads",
        RrreConfig::env_threads().unwrap_or(1),
    );
    let resume = take_switch(&mut args, "--resume");
    let [dir] = args.as_slice() else {
        return fail("train needs exactly one <dir>");
    };
    if threads == 0 {
        return fail("--threads must be ≥ 1");
    }

    eprintln!("generating synthetic dataset (scale {scale})...");
    let (ds, corpus, _) = synth_corpus(scale, 12, 8, 1);
    let train: Vec<usize> = (0..ds.len()).collect();
    let cfg = RrreConfig { epochs, threads, ..RrreConfig::tiny() };
    let ckpt = CheckpointConfig { dir: PathBuf::from(dir), every, keep: 3 };

    let mut last: Option<EpochStats> = None;
    // The hook runs *after* the epoch's checkpoint (if any) is on disk, so
    // exiting here is a faithful stand-in for a SIGKILL between epochs.
    let hook = |stats: EpochStats, _model: &Rrre| {
        eprintln!("epoch {} loss {:.6}", stats.epoch, stats.loss);
        last = Some(stats);
        if abort_after == Some(stats.epoch + 1) {
            eprintln!("aborting after epoch {} (checkpoint is on disk)", stats.epoch + 1);
            std::process::exit(137);
        }
    };
    let outcome = if resume {
        Rrre::resume(&ds, &corpus, &train, cfg, &ckpt, hook)
    } else {
        Rrre::fit_checkpointed(&ds, &corpus, &train, cfg, &ckpt, hook)
    };
    match outcome {
        Ok(out) => {
            if let Some(from) = out.resumed_from {
                eprintln!("resumed from checkpoint at {from} completed epochs");
            }
            if let Some(at) = out.diverged_at {
                eprintln!(
                    "training diverged at epoch {at}; rolled back to the checkpoint at {} epochs",
                    out.completed_epochs
                );
            }
            // `bits` pins the exact f32, so crash-drill scripts can compare
            // runs without any float-formatting slack.
            let (loss, bits) = last.map_or((f32::NAN, 0), |s| (s.loss, s.loss.to_bits()));
            println!("final epochs={} loss={loss:.6} bits={bits:08x}", out.completed_epochs);
            ExitCode::SUCCESS
        }
        Err(e) => die(format!("training failed: {e}")),
    }
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let mut cfg = EngineConfig::default();
    cfg.shard_id = take_flag(&mut args, "--shard-id").map(|s| parse_flag(Some(s), "--shard-id", 0));
    cfg.workers = parse_flag(take_flag(&mut args, "--workers"), "--workers", cfg.workers);
    cfg.max_batch = parse_flag(take_flag(&mut args, "--max-batch"), "--max-batch", cfg.max_batch);
    if let Some(ms) = take_flag(&mut args, "--max-wait-ms") {
        cfg.max_wait = Duration::from_millis(parse_flag(Some(ms), "--max-wait-ms", 2));
    }
    cfg.queue_cap = parse_flag(take_flag(&mut args, "--queue-cap"), "--queue-cap", cfg.queue_cap);
    let mut server_cfg = ServerConfig::default();
    server_cfg.max_connections =
        parse_flag(take_flag(&mut args, "--max-conns"), "--max-conns", server_cfg.max_connections);
    if let Some(ms) = take_flag(&mut args, "--read-timeout-ms") {
        server_cfg.read_timeout = Duration::from_millis(parse_flag(Some(ms), "--read-timeout-ms", 100));
    }
    if let Some(ms) = take_flag(&mut args, "--drain-ms") {
        server_cfg.drain_deadline = Duration::from_millis(parse_flag(Some(ms), "--drain-ms", 2000));
    }
    if let Some(ms) = take_flag(&mut args, "--idle-timeout-ms") {
        server_cfg.idle_timeout =
            Some(Duration::from_millis(parse_flag(Some(ms), "--idle-timeout-ms", 30_000)));
    }
    server_cfg.max_inflight_per_conn = parse_flag(
        take_flag(&mut args, "--max-inflight"),
        "--max-inflight",
        server_cfg.max_inflight_per_conn,
    );
    if let Some(kb) = take_flag(&mut args, "--write-buf-kb") {
        server_cfg.write_buffer_cap = parse_flag::<usize>(Some(kb), "--write-buf-kb", 256) * 1024;
    }
    let ingest_on = take_switch(&mut args, "--ingest");
    let mut ingest_cfg = IngestConfig::default();
    ingest_cfg.segment_bytes =
        parse_flag::<u64>(take_flag(&mut args, "--segment-kb"), "--segment-kb", 4096) * 1024;
    let fsync_batch: usize = parse_flag(take_flag(&mut args, "--fsync-batch"), "--fsync-batch", 0);
    if fsync_batch > 1 {
        ingest_cfg.fsync = FsyncPolicy::Batched { every: fsync_batch };
    }
    ingest_cfg.refresh_every = parse_flag(
        take_flag(&mut args, "--refresh-every"),
        "--refresh-every",
        ingest_cfg.refresh_every,
    );
    ingest_cfg.cold_start_min = parse_flag(
        take_flag(&mut args, "--cold-start-min"),
        "--cold-start-min",
        ingest_cfg.cold_start_min,
    );
    let followers = take_flag(&mut args, "--followers").map(|s| {
        s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect::<Vec<_>>()
    });
    let replicate_from = take_flag(&mut args, "--replicate-from");
    let ack_flag = take_flag(&mut args, "--ack");
    let epoch: u64 = parse_flag(take_flag(&mut args, "--epoch"), "--epoch", 1);
    let quorum_timeout_ms: u64 =
        parse_flag(take_flag(&mut args, "--quorum-timeout-ms"), "--quorum-timeout-ms", 5000);
    if followers.is_some() && replicate_from.is_some() {
        return fail("--followers and --replicate-from are mutually exclusive");
    }
    let repl_cfg = match (followers, replicate_from) {
        (None, None) => {
            if ack_flag.is_some() {
                return fail("--ack needs replication (--followers or --replicate-from)");
            }
            None
        }
        (followers, leader) => {
            if !ingest_on {
                return fail("replication (--followers/--replicate-from) needs --ingest");
            }
            let ack = match ack_flag.as_deref() {
                None | Some("quorum") => AckLevel::Quorum,
                Some("leader") => AckLevel::Leader,
                Some(other) => return fail(&format!("--ack got `{other}`, want leader|quorum")),
            };
            let role = match followers {
                Some(followers) => ReplRole::Leader { followers, epoch },
                None => ReplRole::Follower { leader },
            };
            Some(ReplicationConfig {
                role,
                ack,
                quorum_timeout: Duration::from_millis(quorum_timeout_ms),
                self_addr: Some(addr.clone()),
                ..ReplicationConfig::default()
            })
        }
    };
    let [dir] = args.as_slice() else {
        return fail("serve needs exactly one <dir>");
    };

    // Validate --shard-id against the manifest *before* constructing the
    // engine (whose own range assert is a panic, not an operator message).
    if let Some(shard) = cfg.shard_id {
        let manifest_path = PathBuf::from(dir).join(rrre_serve::artifact::MANIFEST_FILE);
        if let Ok(json) = std::fs::read_to_string(&manifest_path) {
            if let Ok(m) = serde_json::from_str::<rrre_serve::ArtifactManifest>(&json) {
                if shard >= m.shard_spec.shards {
                    return die(format!(
                        "--shard-id {shard} out of range: artifact `{dir}` declares {} shard(s)",
                        m.shard_spec.shards
                    ));
                }
            }
        }
    }
    eprintln!("loading artifact from {dir}...");
    let engine = if let Some(repl) = repl_cfg {
        match Engine::open_replicated(dir, cfg, ingest_cfg, repl) {
            Ok(e) => Arc::new(e),
            Err(e) => return die(format!("failed to open artifact `{dir}` replicated: {e}")),
        }
    } else if ingest_on {
        match Engine::open_with_ingest(dir, cfg, ingest_cfg) {
            Ok(e) => Arc::new(e),
            Err(e) => return die(format!("failed to open artifact `{dir}` for ingest: {e}")),
        }
    } else {
        let artifact = match ModelArtifact::load(dir) {
            Ok(a) => a,
            Err(e) => return die(format!("failed to load artifact `{dir}`: {e}")),
        };
        Arc::new(Engine::new(artifact, cfg))
    };
    {
        let generation = engine.generation();
        let manifest = &generation.artifact.manifest;
        if let Some(shard) = cfg.shard_id {
            let spec = manifest.shard_spec;
            eprintln!(
                "serving `{}` as shard {shard}/{} (map version {}) with {} workers",
                manifest.dataset_name, spec.shards, spec.version, cfg.workers
            );
        } else {
            eprintln!(
                "serving `{}` ({} users, {} items) with {} workers",
                manifest.dataset_name, manifest.n_users, manifest.n_items, cfg.workers
            );
        }
        if ingest_on {
            let s = engine.stats();
            eprintln!(
                "ingest enabled: wal={}/wal wal_bytes={} replayed_recoveries={} \
                 refresh_every={} fsync={:?}",
                dir, s.wal_bytes, s.wal_recoveries, ingest_cfg.refresh_every, ingest_cfg.fsync
            );
        }
        if let Some(repl) = engine.replication() {
            let (epoch, count, _) = repl.stats();
            let role = if repl.is_leader() { "leader" } else { "follower" };
            eprintln!("replication enabled: role={role} epoch={epoch} replicated_seq={count}");
        }
    }
    let mut server = match Server::start_with(Arc::clone(&engine), addr.as_str(), server_cfg) {
        Ok(s) => s,
        Err(e) => {
            engine.shutdown();
            return die(format!("failed to bind {addr}: {e}"));
        }
    };
    println!("listening on {}", server.local_addr());
    println!("(stdin verbs: quit, reload, compact, stats, health)");

    let mut got_quit = false;
    for line in std::io::stdin().lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => {
                got_quit = true;
                break;
            }
            Ok(l) if l.trim() == "reload" => {
                match engine.reload() {
                    Ok(generation) => eprintln!("reloaded: now serving generation {generation}"),
                    Err(e) => eprintln!("reload failed: {e}"),
                }
            }
            Ok(l) if l.trim() == "compact" => {
                match engine.compact_now() {
                    Ok((folded, generation)) => {
                        eprintln!("compacted: folded {folded} review(s), serving generation {generation}")
                    }
                    Err(e) => eprintln!("compact failed: {e}"),
                }
            }
            Ok(l) if l.trim() == "health" => {
                let h = engine.health();
                eprintln!(
                    "live={} ready={} draining={} breaker_open={} generation={}",
                    h.live, h.ready, h.draining, h.breaker_open, h.generation
                );
            }
            Ok(l) if l.trim() == "stats" => {
                let s = engine.stats();
                let shard = s.shard_id.map_or("-".into(), |s| s.to_string());
                eprintln!(
                    "generation={} requests={} errors={} shed={} reloads={} \
                     reload_failures={} worker_panics={} breaker_open={} \
                     cache_hit_rate={:.3} shard={shard} cross_shard_rejects={} \
                     scatter_fanout={} epoch={} replicated_seq={} replication_lag={} \
                     stale_epoch_rejections={}",
                    s.generation,
                    s.requests,
                    s.errors,
                    s.shed,
                    s.reloads,
                    s.reload_failures,
                    s.worker_panics,
                    s.breaker_open,
                    s.cache_hit_rate,
                    s.cross_shard_rejects,
                    s.scatter_fanout,
                    s.epoch,
                    s.replicated_seq,
                    s.replication_lag,
                    s.stale_epoch_rejections
                );
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    if !got_quit && !std::io::stdin().is_terminal() {
        // Stdin hit EOF but isn't a terminal — the server is running
        // detached (`rrre-serve serve dir &`, a supervisor, /dev/null).
        // Keep serving until the process is killed; only an interactive
        // Ctrl-D or a `quit` line shuts it down from stdin.
        eprintln!("stdin closed; serving until killed");
        loop {
            std::thread::park();
        }
    }
    eprintln!("shutting down...");
    server.stop();
    engine.shutdown();
    let stats = engine.stats();
    eprintln!(
        "served {} requests ({} errors, {} shed), cache hit rate {:.1}%",
        stats.requests,
        stats.errors,
        stats.shed,
        stats.cache_hit_rate * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_shardmap(mut args: Vec<String>) -> ExitCode {
    let Some(replicas_arg) = take_flag(&mut args, "--replicas") else {
        return fail("shardmap needs --replicas \"a,b;c,d;e,f\"");
    };
    let [dir] = args.as_slice() else {
        return fail("shardmap needs <dir> --replicas \"a,b;c,d;e,f\"");
    };
    let manifest_path = PathBuf::from(dir).join(rrre_serve::artifact::MANIFEST_FILE);
    let json = match std::fs::read_to_string(&manifest_path) {
        Ok(j) => j,
        Err(e) => return die(format!("cannot read `{}`: {e}", manifest_path.display())),
    };
    let manifest: rrre_serve::ArtifactManifest = match serde_json::from_str(&json) {
        Ok(m) => m,
        Err(e) => return die(format!("`{}` does not parse as a manifest: {e}", manifest_path.display())),
    };
    let replicas: Vec<Vec<String>> = replicas_arg
        .split(';')
        .map(|shard| {
            shard.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect()
        })
        .collect();
    let topology = ShardTopology { spec: manifest.shard_spec, replicas };
    if let Err(e) = topology.validate() {
        return die(format!(
            "replica lists don't fit the artifact's shard map ({} shard(s), version {}): {e}",
            manifest.shard_spec.shards, manifest.shard_spec.version
        ));
    }
    println!("{}", topology.to_json());
    ExitCode::SUCCESS
}

/// How a client command reaches the fleet: one failover pool over a flat
/// replica list, or shard-routed scatter-gather over a topology file.
enum Fleet {
    Flat(Client),
    Sharded(ShardedClient),
}

impl Fleet {
    fn request(&self, req: Request) -> Result<Response, ClientError> {
        match self {
            Fleet::Flat(c) => c.request(req),
            Fleet::Sharded(c) => c.request(req),
        }
    }

    fn shutdown(&self) {
        match self {
            Fleet::Flat(c) => c.shutdown(),
            Fleet::Sharded(c) => c.shutdown(),
        }
    }
}

/// Pulls the shared resilient-client flags (`--replicas`, `--shard-map`,
/// `--retries`, `--timeout-ms`, `--hedge-after-ms`, `--seed`) out of
/// `args`. `--replicas` and `--shard-map` are mutually exclusive.
fn client_flags(args: &mut Vec<String>) -> (Option<Vec<String>>, Option<ShardTopology>, ClientConfig) {
    let replicas = take_flag(args, "--replicas").map(|s| {
        let list: Vec<String> =
            s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect();
        if list.is_empty() {
            eprintln!("rrre-serve: --replicas got an empty list");
            std::process::exit(2);
        }
        list
    });
    let topology = take_flag(args, "--shard-map").map(|path| {
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("rrre-serve: cannot read --shard-map `{path}`: {e}");
            std::process::exit(2);
        });
        ShardTopology::from_json(&json).unwrap_or_else(|e| {
            eprintln!("rrre-serve: --shard-map `{path}` is not a valid topology: {e}");
            std::process::exit(2);
        })
    });
    if replicas.is_some() && topology.is_some() {
        eprintln!("rrre-serve: --replicas and --shard-map are mutually exclusive");
        std::process::exit(2);
    }
    let mut cfg = ClientConfig::default();
    cfg.retries = parse_flag(take_flag(args, "--retries"), "--retries", cfg.retries);
    if let Some(ms) = take_flag(args, "--timeout-ms") {
        cfg.request_timeout = Duration::from_millis(parse_flag(Some(ms), "--timeout-ms", 2000));
    }
    if let Some(ms) = take_flag(args, "--hedge-after-ms") {
        cfg.hedge_after = Some(Duration::from_millis(parse_flag(Some(ms), "--hedge-after-ms", 50)));
    }
    cfg.seed = parse_flag(take_flag(args, "--seed"), "--seed", cfg.seed);
    (replicas, topology, cfg)
}

/// Builds the right client for whichever routing flag was given.
fn build_fleet(
    replicas: Option<Vec<String>>,
    topology: Option<ShardTopology>,
    cfg: ClientConfig,
) -> Result<Fleet, ExitCode> {
    match (replicas, topology) {
        (Some(endpoints), None) => Ok(Fleet::Flat(Client::new(endpoints, cfg))),
        (None, Some(topo)) => match ShardedClient::new(topo, cfg) {
            Ok(c) => Ok(Fleet::Sharded(c)),
            Err(e) => Err(die(format!("shard map rejected: {e}"))),
        },
        _ => unreachable!("caller checked exactly one routing flag"),
    }
}

/// Sends one decoded request through the resilient client and prints the
/// response line; the exit code reflects the response's `ok`.
fn client_roundtrip(fleet: Fleet, line: &str) -> ExitCode {
    let request = match decode_request(line) {
        Ok(r) => r,
        Err(e) => return die(format!("request line does not parse: {e}")),
    };
    let outcome = fleet.request(request);
    fleet.shutdown();
    match outcome {
        Ok(resp) => {
            println!("{}", encode_response(&resp));
            if resp.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => die(format!("request failed: {e}")),
    }
}

fn cmd_query(mut args: Vec<String>) -> ExitCode {
    let (replicas, topology, cfg) = client_flags(&mut args);
    let (replicas, line) = match (replicas, topology.is_some(), args.as_slice()) {
        (Some(reps), false, [line]) => (Some(reps), line.clone()),
        (None, true, [line]) => (None, line.clone()),
        (None, false, [addr, line]) => (Some(vec![addr.clone()]), line.clone()),
        (_, true, _) => return fail("query with --shard-map needs exactly one <json-line>"),
        (Some(_), _, _) => return fail("query with --replicas needs exactly one <json-line>"),
        (None, _, _) => return fail("query needs <addr> <json-line>"),
    };
    match build_fleet(replicas, topology, cfg) {
        Ok(fleet) => client_roundtrip(fleet, &line),
        Err(code) => code,
    }
}

/// Resolves the `(<addr> | --replicas | --shard-map)` routing triad the
/// client verbs share: one positional address becomes a single-replica
/// flat fleet.
fn routed_fleet(
    verb: &str,
    mut args: Vec<String>,
) -> Result<(Fleet, Vec<String>), ExitCode> {
    let (mut replicas, topology, cfg) = client_flags(&mut args);
    if replicas.is_none() && topology.is_none() {
        if args.is_empty() {
            return Err(fail(&format!(
                "{verb} needs <addr>, --replicas a,b,c or --shard-map FILE"
            )));
        }
        replicas = Some(vec![args.remove(0)]);
    }
    let fleet = build_fleet(replicas, topology, cfg)?;
    Ok((fleet, args))
}

/// The train-on-poisoned / evaluate-on-clean robustness sweep. Emits the
/// Table-IV-style grid CSV; every byte is a pure function of the flags.
fn cmd_attack_eval(mut args: Vec<String>) -> ExitCode {
    let out = take_flag(&mut args, "--out");
    let scale: f64 = parse_flag(take_flag(&mut args, "--scale"), "--scale", 0.05);
    let epochs: usize = parse_flag(take_flag(&mut args, "--epochs"), "--epochs", 8);
    let threads: usize =
        parse_flag(take_flag(&mut args, "--threads"), "--threads", RrreConfig::env_threads().unwrap_or(1));
    let seed: u64 = parse_flag(take_flag(&mut args, "--seed"), "--seed", 0xA77AC4);
    let families_arg =
        take_flag(&mut args, "--families").unwrap_or_else(|| "template,ramp,burst,mimicry".into());
    let strengths_arg = take_flag(&mut args, "--strengths").unwrap_or_else(|| "0.1,0.25,0.5".into());
    if !args.is_empty() {
        return fail(&format!("attack-eval got unrecognised arguments: {args:?}"));
    }
    let mut families = Vec::new();
    for name in families_arg.split(',').filter(|s| !s.is_empty()) {
        match AttackFamily::parse(name) {
            Some(f) => families.push(f),
            None => return die(format!("unknown attack family `{name}`")),
        }
    }
    let mut strengths = Vec::new();
    for s in strengths_arg.split(',').filter(|s| !s.is_empty()) {
        match s.parse::<f64>() {
            Ok(v) if v >= 0.0 => strengths.push(v),
            _ => return die(format!("bad attack strength `{s}`")),
        }
    }
    if families.is_empty() || strengths.is_empty() {
        return die("attack-eval needs at least one family and one strength");
    }

    let mut cfg = AttackEvalConfig::small();
    cfg.base = SynthConfig::yelp_chi().scaled(scale);
    cfg.model.epochs = epochs;
    cfg.model.threads = threads.max(1);
    cfg.campaign_seed = seed;
    cfg.families = families;
    cfg.strengths = strengths;

    let started = Instant::now();
    let report = run_robustness_sweep(&cfg, |family, strength| {
        eprintln!("attack-eval: finished {family} @ strength {strength}");
    });
    let grid = report.grid();
    let csv = grid.to_csv();
    print!("{csv}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &csv) {
            return die(format!("cannot write {path}: {e}"));
        }
        eprintln!("attack-eval: wrote {path}");
    }
    eprintln!(
        "attack-eval: base={} reviews, clean ap={:.4} rmse={:.4}, {} cells in {:.1}s, monotone families: {}",
        report.base.len(),
        report.clean_eval.ap_benign,
        report.clean_eval.rmse,
        grid.rows().len(),
        started.elapsed().as_secs_f64(),
        {
            let m = grid.monotone_degradation_families();
            if m.is_empty() { "none".to_string() } else { m.join(",") }
        },
    );
    ExitCode::SUCCESS
}

fn cmd_ingest(args: Vec<String>) -> ExitCode {
    let (fleet, mut args) = match routed_fleet("ingest", args) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    let Some(count) = take_flag(&mut args, "--count") else {
        fleet.shutdown();
        return fail("ingest needs --count N");
    };
    let count: u64 = parse_flag(Some(count), "--count", 0);
    let seq_start: u64 = parse_flag(take_flag(&mut args, "--seq-start"), "--seq-start", 0);
    let users: u64 = parse_flag(take_flag(&mut args, "--users"), "--users", 2);
    let items: u64 = parse_flag(take_flag(&mut args, "--items"), "--items", 2);
    let campaign_arg = take_flag(&mut args, "--campaign");
    let attack_seed: u64 =
        parse_flag(take_flag(&mut args, "--attack-seed"), "--attack-seed", 0xA77AC4);
    if users == 0 || items == 0 {
        fleet.shutdown();
        return fail("ingest needs --users and --items ≥ 1");
    }
    if !args.is_empty() {
        fleet.shutdown();
        return fail(&format!("ingest got unrecognised arguments: {args:?}"));
    }
    // Campaign mode: the payload stream comes from a seeded fraud campaign
    // confined to the --users/--items id space instead of the bland
    // seq-derived reviews — still a pure function of the flags, so replays
    // dedup the same way.
    let campaign_stream = match campaign_arg {
        None => None,
        Some(name) => match AttackFamily::parse(&name) {
            Some(family) => {
                let campaign = AttackCampaign::new(family, 0.0, attack_seed);
                Some(campaign.stream(users as usize, items as usize, count as usize))
            }
            None => {
                fleet.shutdown();
                return die(format!("unknown attack family `{name}`"));
            }
        },
    };

    // Every field below is a pure function of the seq (or of the seeded
    // campaign), so re-running the same command line replays byte-identical
    // reviews — the durable unit the server's dedup needs for exactly-once
    // drills.
    let sequencer = IngestSequencer::starting_at(seq_start);
    let (mut fresh, mut dup, mut failed) = (0u64, 0u64, 0u64);
    for k in 0..count {
        let seq = sequencer.next_seq();
        let req = match &campaign_stream {
            Some(stream) => {
                let r = &stream[k as usize];
                sequencer.review(r.user.0, r.item.0, r.rating, r.text.clone(), r.timestamp)
            }
            None => sequencer.review(
                (seq % users) as u32,
                (seq % items) as u32,
                1.0 + (seq % 5) as f32,
                format!("review {seq}"),
                seq as i64,
            ),
        };
        match fleet.request(req) {
            Ok(resp) if resp.ok => match resp.ingest {
                Some(ack) => {
                    println!("seq={} duplicate={}", ack.seq, ack.duplicate);
                    if ack.duplicate {
                        dup += 1;
                    } else {
                        fresh += 1;
                    }
                }
                None => {
                    failed += 1;
                    eprintln!("seq={seq} acked without an ingest payload");
                }
            },
            Ok(resp) => {
                failed += 1;
                eprintln!("seq={seq} refused: {:?}: {:?}", resp.kind, resp.error);
            }
            Err(e) => {
                failed += 1;
                eprintln!("seq={seq} failed: {e}");
            }
        }
    }
    fleet.shutdown();
    println!("ingested total={count} new={fresh} dup={dup} failed={failed}");
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_compact(args: Vec<String>) -> ExitCode {
    let (fleet, args) = match routed_fleet("compact", args) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    if !args.is_empty() {
        fleet.shutdown();
        return fail(&format!("compact got unrecognised arguments: {args:?}"));
    }
    let outcome = fleet.request(Request::compact());
    fleet.shutdown();
    match outcome {
        Ok(resp) if resp.ok => {
            match &resp.compaction {
                Some(c) => println!(
                    "compacted folded={} generation={}",
                    c.folded, c.generation
                ),
                None => println!("compacted (no fold payload reported)"),
            }
            ExitCode::SUCCESS
        }
        Ok(resp) => die(format!("compact refused: {:?}: {:?}", resp.kind, resp.error)),
        Err(e) => die(format!("compact failed: {e}")),
    }
}

fn cmd_promote(mut args: Vec<String>) -> ExitCode {
    let Some(epoch_arg) = take_flag(&mut args, "--epoch") else {
        return fail("promote needs --epoch N");
    };
    let epoch: u64 = parse_flag(Some(epoch_arg), "--epoch", 0);
    let peers: Vec<String> = take_flag(&mut args, "--peers").map_or_else(Vec::new, |s| {
        s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect()
    });
    let (fleet, args) = match routed_fleet("promote", args) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    if !args.is_empty() {
        fleet.shutdown();
        return fail(&format!("promote got unrecognised arguments: {args:?}"));
    }
    let outcome = fleet.request(Request::promote(epoch, peers));
    fleet.shutdown();
    match outcome {
        Ok(resp) if resp.ok => {
            println!("promoted epoch={}", resp.epoch.unwrap_or(epoch));
            ExitCode::SUCCESS
        }
        Ok(resp) => die(format!("promote refused: {:?}: {:?}", resp.kind, resp.error)),
        Err(e) => die(format!("promote failed: {e}")),
    }
}

fn cmd_oneshot(mut args: Vec<String>) -> ExitCode {
    let (replicas, topology, cfg) = client_flags(&mut args);
    if replicas.is_some() || topology.is_some() {
        // Network one-shot: same client machinery as `query`.
        let [line] = args.as_slice() else {
            return fail("oneshot with --replicas/--shard-map needs exactly one <json-line>");
        };
        let line = line.clone();
        return match build_fleet(replicas, topology, cfg) {
            Ok(fleet) => client_roundtrip(fleet, &line),
            Err(code) => code,
        };
    }
    let [dir, line] = args.as_slice() else {
        return fail("oneshot needs <dir> <json-line>");
    };
    let artifact = match ModelArtifact::load(dir) {
        Ok(a) => a,
        Err(e) => return die(format!("failed to load artifact `{dir}`: {e}")),
    };
    let engine = Engine::new(
        artifact,
        EngineConfig { workers: 1, max_wait: Duration::ZERO, ..EngineConfig::default() },
    );
    let response = engine.submit_line(line);
    println!("{}", rrre_serve::protocol::encode_response(&response));
    engine.shutdown();
    if response.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Per-request outcome tallies shared across burst workers.
#[derive(Default)]
struct BurstTally {
    ok: AtomicUsize,
    failed: AtomicUsize,
    degraded: AtomicUsize,
}

fn cmd_burst(mut args: Vec<String>) -> ExitCode {
    let (replicas, topology, mut cfg) = client_flags(&mut args);
    if replicas.is_none() && topology.is_none() {
        return fail("burst needs --replicas a,b,c or --shard-map FILE");
    }
    let shard_count = topology.as_ref().map_or(1, |t| t.shards());
    let requests: usize = parse_flag(take_flag(&mut args, "--requests"), "--requests", 100);
    let gap_ms: u64 = parse_flag(take_flag(&mut args, "--gap-ms"), "--gap-ms", 2);
    let users: u32 = parse_flag(take_flag(&mut args, "--users"), "--users", 2);
    let items: u32 = parse_flag(take_flag(&mut args, "--items"), "--items", 2);
    let recommend_k: usize = parse_flag(take_flag(&mut args, "--recommend-k"), "--recommend-k", 0);
    let open_loop = take_switch(&mut args, "--open-loop");
    let rate: f64 = parse_flag(take_flag(&mut args, "--rate"), "--rate", 200.0);
    let concurrency: usize = parse_flag(take_flag(&mut args, "--concurrency"), "--concurrency", 8);
    let depth_flag = take_flag(&mut args, "--pipeline-depth");
    let conns_flag = take_flag(&mut args, "--conns");
    let pipelined = depth_flag.is_some() || conns_flag.is_some();
    let depth: usize = parse_flag(depth_flag, "--pipeline-depth", 1);
    let conns: usize = parse_flag(conns_flag, "--conns", 1);
    let json_out = take_switch(&mut args, "--json");
    let probe_ms: u64 =
        parse_flag(take_flag(&mut args, "--probe-interval-ms"), "--probe-interval-ms", 100);
    cfg.probe_interval = if probe_ms == 0 { None } else { Some(Duration::from_millis(probe_ms)) };
    if !args.is_empty() {
        return fail(&format!("burst got unrecognised arguments: {args:?}"));
    }
    if users == 0 || items == 0 {
        return fail("burst needs --users and --items ≥ 1");
    }
    if open_loop && (!(rate > 0.0) || concurrency == 0) {
        return fail("--open-loop needs --rate > 0 and --concurrency ≥ 1");
    }
    if pipelined {
        let Some(endpoints) = replicas else {
            return fail("pipelined burst (--pipeline-depth/--conns) needs --replicas");
        };
        if depth == 0 || conns == 0 {
            return fail("--pipeline-depth and --conns must be ≥ 1");
        }
        if !(rate > 0.0) {
            return fail("pipelined burst needs --rate > 0");
        }
        return burst_pipelined(
            &endpoints,
            conns,
            depth,
            requests,
            rate,
            concurrency,
            cfg.request_timeout,
            users,
            items,
            recommend_k,
            json_out,
        );
    }

    let fleet = match build_fleet(replicas, topology, cfg) {
        Ok(f) => f,
        Err(code) => return code,
    };
    // Recommends exercise the scatter-gather path end to end; Predicts
    // exercise point routing. Both are deterministic in `i`.
    let make_req = |i: usize| {
        if recommend_k > 0 {
            Request::recommend(i as u32 % users, recommend_k)
        } else {
            Request::predict(i as u32 % users, i as u32 % items)
        }
    };

    let tally = BurstTally::default();
    let latencies = Mutex::new(Vec::with_capacity(requests));
    let record = |i: usize, outcome: Result<Response, ClientError>, elapsed: Duration| {
        match outcome {
            Ok(resp) if resp.ok => {
                tally.ok.fetch_add(1, Ordering::Relaxed);
                if resp.degraded == Some(true) {
                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(resp) => {
                tally.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!("request {i} refused: {:?}: {:?}", resp.kind, resp.error);
            }
            Err(e) => {
                tally.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!("request {i} failed: {e}");
            }
        }
        latencies.lock().unwrap().push(elapsed);
    };

    let start = Instant::now();
    if open_loop {
        // Fixed arrival schedule: request i fires at start + i/rate no
        // matter how long earlier requests take, so slow replicas inflate
        // measured latency instead of silently thinning the load.
        let interval = Duration::from_secs_f64(1.0 / rate);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..concurrency.min(requests) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let due = start + interval * i as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let fired = Instant::now();
                    let outcome = fleet.request(make_req(i));
                    record(i, outcome, fired.elapsed());
                });
            }
        });
    } else {
        for i in 0..requests {
            let fired = Instant::now();
            let outcome = fleet.request(make_req(i));
            record(i, outcome, fired.elapsed());
            if gap_ms > 0 {
                std::thread::sleep(Duration::from_millis(gap_ms));
            }
        }
    }
    let elapsed = start.elapsed();
    let (ok, failed, degraded) = (
        tally.ok.load(Ordering::Relaxed),
        tally.failed.load(Ordering::Relaxed),
        tally.degraded.load(Ordering::Relaxed),
    );

    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let (p50, p99) = (percentile_ms(&lats, 0.50), percentile_ms(&lats, 0.99));
    let throughput = requests as f64 / elapsed.as_secs_f64().max(1e-9);

    let (retries, hedges, shard_stats_json) = match &fleet {
        Fleet::Flat(client) => {
            let snap = client.snapshot();
            if !json_out {
                for r in &snap.replicas {
                    println!(
                        "replica {} attempts={} failures={} hedges={} breaker_opens={} breaker_open={} probe_ready={}",
                        r.addr, r.attempts, r.failures, r.hedges, r.breaker_opens, r.breaker_open, r.probe_ready
                    );
                }
            }
            (snap.retries, snap.hedges, "[]".to_string())
        }
        Fleet::Sharded(client) => {
            let snap = client.snapshot();
            let (mut retries, mut hedges) = (0u64, 0u64);
            for (shard, s) in snap.shards.iter().enumerate() {
                retries += s.retries;
                hedges += s.hedges;
                if !json_out {
                    for r in &s.replicas {
                        println!(
                            "shard {shard} replica {} attempts={} failures={} hedges={} breaker_opens={} breaker_open={} probe_ready={}",
                            r.addr, r.attempts, r.failures, r.hedges, r.breaker_opens, r.breaker_open, r.probe_ready
                        );
                    }
                }
            }
            if !json_out {
                println!(
                    "scatter fanout={} degraded_responses={}",
                    snap.scatter_fanout, snap.degraded_responses
                );
            }
            // Each shard's *server-side* counters, queried point-to-point
            // so the scatter-merge doesn't collapse them into one total:
            // scatter_fanout says how much gather traffic the shard served,
            // cross_shard_rejects says how much traffic was misrouted to it.
            let mut rows: Vec<String> = Vec::with_capacity(shard_count as usize);
            for shard in 0..shard_count {
                match client.shard_client(shard).request(Request::stats()) {
                    Ok(resp) => {
                        if let Some(s) = resp.stats {
                            if !json_out {
                                println!(
                                    "shard {shard} server scatter_fanout={} cross_shard_rejects={}",
                                    s.scatter_fanout, s.cross_shard_rejects
                                );
                            }
                            rows.push(format!(
                                "{{\"shard\":{shard},\"scatter_fanout\":{},\
                                 \"cross_shard_rejects\":{}}}",
                                s.scatter_fanout, s.cross_shard_rejects
                            ));
                        }
                    }
                    Err(e) => eprintln!("shard {shard} stats query failed: {e}"),
                }
            }
            (retries, hedges, format!("[{}]", rows.join(",")))
        }
    };

    let mode = if open_loop { "open" } else { "closed" };
    if json_out {
        let rate_target = if open_loop { format!("{rate}") } else { "null".into() };
        let workload = if recommend_k > 0 { "recommend" } else { "predict" };
        println!(
            "{{\"mode\":\"{mode}\",\"shards\":{shard_count},\"workload\":\"{workload}\",\
             \"requests\":{requests},\"ok\":{ok},\"failed\":{failed},\"degraded\":{degraded},\
             \"rate_target_rps\":{rate_target},\"throughput_rps\":{throughput:.2},\
             \"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\"elapsed_ms\":{:.1},\
             \"retries\":{retries},\"hedges\":{hedges},\
             \"shard_stats\":{shard_stats_json}}}",
            elapsed.as_secs_f64() * 1e3
        );
    } else {
        println!(
            "burst mode={mode} shards={shard_count} requests={requests} ok={ok} failed={failed} \
             degraded={degraded} p50_ms={p50:.2} p99_ms={p99:.2} throughput_rps={throughput:.1} \
             retries={retries} hedges={hedges}"
        );
    }
    fleet.shutdown();
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest-rank percentile (ceil(q·n) in 1-based ranks) over sorted
/// latencies, in milliseconds.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// One pipelined connection and the send timestamps of its in-flight ids.
struct ConnState {
    client: PipelinedClient,
    sent_at: HashMap<u64, Instant>,
}

/// What one receive attempt on a pipelined connection produced.
enum Recv {
    Got,
    Timeout,
    Dead,
}

/// The pipelined open-loop burst: `conns` raw connections (round-robin
/// over `endpoints`), each keeping up to `depth` requests in flight on one
/// socket via [`PipelinedClient`]. Request `i` fires at `start + i/rate`
/// on connection `i % conns`; responses arrive in whatever order the
/// server completed them and are matched by correlation id. The
/// connections are multiplexed over `workers` client threads (connection
/// `c` belongs to worker `c % workers`) — a thread per connection would
/// make the *client's* scheduler the tail-latency story on small
/// machines. Every connection is established before the arrival clock
/// starts (each worker connects its own sequentially, so the listen
/// backlog never sees a herd): the row measures steady-state request
/// latency over a standing population, not connect cost. No retries, no
/// failover — this mode measures the server's pipelined path, not the
/// resilient client.
#[allow(clippy::too_many_arguments)]
fn burst_pipelined(
    endpoints: &[String],
    conns: usize,
    depth: usize,
    requests: usize,
    rate: f64,
    workers: usize,
    timeout: Duration,
    users: u32,
    items: u32,
    recommend_k: usize,
    json_out: bool,
) -> ExitCode {
    let make_req = |i: usize| {
        if recommend_k > 0 {
            Request::recommend(i as u32 % users, recommend_k)
        } else {
            Request::predict(i as u32 % users, i as u32 % items)
        }
    };
    let workers = workers.clamp(1, conns);
    let tally = BurstTally::default();
    let latencies = Mutex::new(Vec::with_capacity(requests));
    let interval = Duration::from_secs_f64(1.0 / rate);
    // The arrival clock starts only after every worker has its
    // connections established: the barrier releases them together and the
    // first one through stamps the shared start instant.
    let barrier = std::sync::Barrier::new(workers);
    let start_cell: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (tally, latencies) = (&tally, &latencies);
            let (barrier, start_cell) = (&barrier, &start_cell);
            scope.spawn(move || {
                let recv_one = |conn: &mut ConnState, c: usize, wait: Duration| -> Recv {
                    match conn.client.recv(wait) {
                        Ok(Pipelined::Response(resp)) => {
                            let elapsed = resp
                                .id
                                .and_then(|id| conn.sent_at.remove(&id))
                                .map_or(Duration::ZERO, |t| t.elapsed());
                            if resp.ok {
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                if resp.degraded == Some(true) {
                                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "conn {c}: request {:?} refused: {:?}: {:?}",
                                    resp.id, resp.kind, resp.error
                                );
                            }
                            latencies.lock().unwrap().push(elapsed);
                            Recv::Got
                        }
                        Ok(Pipelined::Unmatched(resp)) => {
                            tally.failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!("conn {c}: unmatched response id {:?}", resp.id);
                            Recv::Got
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => Recv::Timeout,
                        Err(e) => {
                            eprintln!("conn {c}: recv failed: {e}");
                            Recv::Dead
                        }
                    }
                };

                // Live connections this worker owns, by connection index.
                let mut open: HashMap<usize, ConnState> = HashMap::new();
                // Connections given up on: their remaining requests fail
                // fast instead of reconnecting (no retries by design).
                let mut dead: Vec<bool> = vec![false; conns];
                for c in (w..conns.min(requests)).step_by(workers) {
                    let addr = &endpoints[c % endpoints.len()];
                    match PipelinedClient::connect(addr.as_str(), timeout) {
                        Ok(client) => {
                            open.insert(c, ConnState { client, sent_at: HashMap::new() });
                        }
                        Err(e) => {
                            eprintln!("conn {c}: connect to {addr} failed: {e}");
                            dead[c] = true;
                        }
                    }
                }
                barrier.wait();
                let start = *start_cell.get_or_init(Instant::now);
                // This worker's schedule: every request whose connection
                // it owns, in arrival order.
                for i in (0..requests).filter(|i| (i % conns) % workers == w) {
                    let c = i % conns;
                    if dead[c] {
                        tally.failed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let due = start + interval * i as u32;
                    // Wait out the schedule, draining early arrivals on
                    // owned connections meanwhile so measured latency is
                    // response time, not time-sat-unread.
                    loop {
                        let Some(wait) = due.checked_duration_since(Instant::now()) else {
                            break;
                        };
                        let pending: Vec<usize> = open
                            .iter()
                            .filter(|(_, s)| s.client.pending() > 0)
                            .map(|(&k, _)| k)
                            .collect();
                        if pending.is_empty() {
                            std::thread::sleep(wait);
                            break;
                        }
                        // One pending conn gets the full wait; several
                        // share it in short slices.
                        let slice = if pending.len() == 1 {
                            wait
                        } else {
                            (wait / pending.len() as u32).max(Duration::from_millis(1))
                        };
                        for k in pending {
                            let conn = open.get_mut(&k).unwrap();
                            if let Recv::Dead = recv_one(conn, k, slice) {
                                tally.failed
                                    .fetch_add(conn.client.pending(), Ordering::Relaxed);
                                open.remove(&k);
                                dead[k] = true;
                            }
                            if due.checked_duration_since(Instant::now()).is_none() {
                                break;
                            }
                        }
                    }
                    if dead[c] {
                        tally.failed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let conn = open.get_mut(&c).unwrap();
                    // The window bound: block for real once it is full.
                    while conn.client.pending() >= depth && !dead[c] {
                        match recv_one(conn, c, timeout) {
                            Recv::Got => {}
                            Recv::Timeout | Recv::Dead => dead[c] = true,
                        }
                    }
                    if dead[c] {
                        let conn = open.remove(&c).unwrap();
                        tally.failed.fetch_add(1 + conn.client.pending(), Ordering::Relaxed);
                        continue;
                    }
                    match conn.client.send(make_req(i)) {
                        Ok(id) => {
                            conn.sent_at.insert(id, Instant::now());
                        }
                        Err(e) => {
                            eprintln!("conn {c}: send failed: {e}");
                            let conn = open.remove(&c).unwrap();
                            tally.failed
                                .fetch_add(1 + conn.client.pending(), Ordering::Relaxed);
                            dead[c] = true;
                            continue;
                        }
                    }
                    // A single-slot window wants the exact round trip:
                    // read the answer now rather than on a later sweep.
                    if depth == 1 {
                        match recv_one(conn, c, timeout) {
                            Recv::Got => {}
                            Recv::Timeout | Recv::Dead => {
                                let conn = open.remove(&c).unwrap();
                                tally.failed
                                    .fetch_add(conn.client.pending(), Ordering::Relaxed);
                                dead[c] = true;
                            }
                        }
                    }
                }
                // Final drain: every in-flight id gets its answer (or the
                // connection is declared dead and its window counted).
                for (c, mut conn) in open {
                    while conn.client.pending() > 0 {
                        match recv_one(&mut conn, c, timeout) {
                            Recv::Got => {}
                            Recv::Timeout | Recv::Dead => {
                                tally.failed
                                    .fetch_add(conn.client.pending(), Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = start_cell.get().copied().unwrap_or_else(Instant::now).elapsed();
    let (ok, failed, degraded) = (
        tally.ok.load(Ordering::Relaxed),
        tally.failed.load(Ordering::Relaxed),
        tally.degraded.load(Ordering::Relaxed),
    );
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let (p50, p99) = (percentile_ms(&lats, 0.50), percentile_ms(&lats, 0.99));
    let throughput = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    if json_out {
        let workload = if recommend_k > 0 { "recommend" } else { "predict" };
        println!(
            "{{\"mode\":\"pipelined\",\"conns\":{conns},\"depth\":{depth},\
             \"workload\":\"{workload}\",\
             \"requests\":{requests},\"ok\":{ok},\"failed\":{failed},\"degraded\":{degraded},\
             \"rate_target_rps\":{rate},\"throughput_rps\":{throughput:.2},\
             \"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\"elapsed_ms\":{:.1},\
             \"retries\":0,\"hedges\":0,\"shard_stats\":[]}}",
            elapsed.as_secs_f64() * 1e3
        );
    } else {
        println!(
            "burst mode=pipelined conns={conns} depth={depth} requests={requests} ok={ok} \
             failed={failed} degraded={degraded} p50_ms={p50:.2} p99_ms={p99:.2} \
             throughput_rps={throughput:.1}"
        );
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
