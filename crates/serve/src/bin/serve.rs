//! `rrre-serve` — train, serve and query RRRE artifacts from the shell.
//!
//! ```text
//! rrre-serve demo <dir> [--scale F]          train a small model, save an artifact
//! rrre-serve serve <dir> [--addr A] [...]    serve an artifact over TCP (NDJSON)
//! rrre-serve query <addr> <json-line>        send one request line, print the reply
//! rrre-serve oneshot <dir> <json-line>       answer one request in-process, no server
//! ```

use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{CorpusConfig, EncodedCorpus};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Server};
use rrre_text::word2vec::Word2VecConfig;
use std::io::{BufRead, BufReader, IsTerminal, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
rrre-serve: inference serving for the RRRE model

USAGE:
  rrre-serve demo <dir> [--scale F]
      Generate a synthetic YelpChi-like dataset (default --scale 0.05),
      train a small RRRE model and write a serving artifact to <dir>.

  rrre-serve serve <dir> [--addr HOST:PORT] [--workers N]
                         [--max-batch N] [--max-wait-ms N]
      Load the artifact in <dir> and serve newline-delimited JSON over TCP
      (default --addr 127.0.0.1:7878). A `quit` line on stdin stops the
      server gracefully; on stdin EOF (detached/daemonized) it keeps
      serving until killed.

  rrre-serve query <addr> <json-line>
      Send one request line to a running server and print the response.

  rrre-serve oneshot <dir> <json-line>
      Load the artifact and answer a single request in-process.

PROTOCOL (one JSON object per line):
  {\"op\":\"Predict\",\"user\":3,\"item\":7}
  {\"op\":\"Recommend\",\"user\":3,\"k\":5}
  {\"op\":\"Explain\",\"item\":7,\"k\":3}
  {\"op\":\"Invalidate\",\"user\":3}
  {\"op\":\"Stats\"}
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("rrre-serve: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

/// Operator-facing error: print cleanly, no panic backtrace.
fn die(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("rrre-serve: {msg}");
    ExitCode::FAILURE
}

/// Pulls `--flag value` out of `args`, leaving positional arguments.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("rrre-serve: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "demo" => cmd_demo(args),
        "serve" => cmd_serve(args),
        "query" => cmd_query(args),
        "oneshot" => cmd_oneshot(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown subcommand `{other}`")),
    }
}

fn cmd_demo(mut args: Vec<String>) -> ExitCode {
    let scale: f64 = take_flag(&mut args, "--scale")
        .map_or(0.05, |s| s.parse().expect("--scale must be a float"));
    let [dir] = args.as_slice() else {
        return fail("demo needs exactly one <dir>");
    };

    eprintln!("generating synthetic dataset (scale {scale})...");
    let ds = generate(&SynthConfig::yelp_chi().scaled(scale));
    let corpus_cfg = CorpusConfig {
        max_len: 16,
        word2vec: Word2VecConfig { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    };
    let corpus = EncodedCorpus::build(&ds, &corpus_cfg);
    eprintln!(
        "training on {} reviews ({} users x {} items)...",
        ds.len(),
        ds.n_users,
        ds.n_items
    );
    let train: Vec<usize> = (0..ds.len()).collect();
    let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 5, ..RrreConfig::tiny() });
    if let Err(e) = ModelArtifact::save(dir, &ds, &corpus, &model, corpus_cfg.min_count) {
        return die(format!("failed to write artifact to `{dir}`: {e}"));
    }
    println!("artifact written to {dir}");
    println!("next: rrre-serve serve {dir}");
    println!("then: rrre-serve query 127.0.0.1:7878 '{{\"op\":\"Recommend\",\"user\":0,\"k\":3}}'");
    ExitCode::SUCCESS
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let mut cfg = EngineConfig::default();
    if let Some(w) = take_flag(&mut args, "--workers") {
        cfg.workers = w.parse().expect("--workers must be an integer");
    }
    if let Some(b) = take_flag(&mut args, "--max-batch") {
        cfg.max_batch = b.parse().expect("--max-batch must be an integer");
    }
    if let Some(ms) = take_flag(&mut args, "--max-wait-ms") {
        cfg.max_wait = Duration::from_millis(ms.parse().expect("--max-wait-ms must be an integer"));
    }
    let [dir] = args.as_slice() else {
        return fail("serve needs exactly one <dir>");
    };

    eprintln!("loading artifact from {dir}...");
    let artifact = match ModelArtifact::load(dir) {
        Ok(a) => a,
        Err(e) => return die(format!("failed to load artifact `{dir}`: {e}")),
    };
    eprintln!(
        "serving `{}` ({} users, {} items) with {} workers",
        artifact.manifest.dataset_name, artifact.manifest.n_users, artifact.manifest.n_items,
        cfg.workers
    );
    let engine = Arc::new(Engine::new(artifact, cfg));
    let server = match Server::start(Arc::clone(&engine), addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            engine.shutdown();
            return die(format!("failed to bind {addr}: {e}"));
        }
    };
    println!("listening on {}", server.local_addr());
    println!("(a `quit` line on stdin stops the server)");

    let mut got_quit = false;
    for line in std::io::stdin().lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => {
                got_quit = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    if !got_quit && !std::io::stdin().is_terminal() {
        // Stdin hit EOF but isn't a terminal — the server is running
        // detached (`rrre-serve serve dir &`, a supervisor, /dev/null).
        // Keep serving until the process is killed; only an interactive
        // Ctrl-D or a `quit` line shuts it down from stdin.
        eprintln!("stdin closed; serving until killed");
        loop {
            std::thread::park();
        }
    }
    eprintln!("shutting down...");
    server.stop();
    engine.shutdown();
    let stats = engine.stats();
    eprintln!(
        "served {} requests ({} errors), cache hit rate {:.1}%",
        stats.requests,
        stats.errors,
        stats.cache_hit_rate * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_query(args: Vec<String>) -> ExitCode {
    let [addr, line] = args.as_slice() else {
        return fail("query needs <addr> <json-line>");
    };
    let stream = match TcpStream::connect(addr.as_str()) {
        Ok(s) => s,
        Err(e) => return die(format!("failed to connect to {addr}: {e}")),
    };
    let mut writer = stream.try_clone().expect("failed to clone stream");
    writer.write_all(line.as_bytes()).and_then(|()| writer.write_all(b"\n")).expect("send failed");
    writer.flush().expect("flush failed");
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).expect("no response");
    print!("{response}");
    ExitCode::SUCCESS
}

fn cmd_oneshot(args: Vec<String>) -> ExitCode {
    let [dir, line] = args.as_slice() else {
        return fail("oneshot needs <dir> <json-line>");
    };
    let artifact = match ModelArtifact::load(dir) {
        Ok(a) => a,
        Err(e) => return die(format!("failed to load artifact `{dir}`: {e}")),
    };
    let engine = Engine::new(
        artifact,
        EngineConfig { workers: 1, max_wait: Duration::ZERO, ..EngineConfig::default() },
    );
    let response = engine.submit_line(line);
    println!("{}", rrre_serve::protocol::encode_response(&response));
    engine.shutdown();
    if response.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
