//! The on-disk serving bundle.
//!
//! An artifact directory is fully self-describing:
//!
//! ```text
//! <dir>/manifest.json   versioned summary + RrreConfig (human-readable)
//! <dir>/dataset.json    the review dataset (users, items, texts, labels)
//! <dir>/vectors.rrrp    pretrained word vectors as a single-tensor RRRP file
//! <dir>/model.rrrp      trained model weights (RRRP checkpoint)
//! ```
//!
//! Tokenisation, vocabulary construction and document encoding are
//! deterministic functions of the dataset text, so the corpus is *rebuilt*
//! at load time ([`rrre_data::EncodedCorpus::from_parts`]) rather than
//! persisted — the artifact stores only what cannot be recomputed: the
//! trained word vectors and the trained weights.
//!
//! Every load cross-checks the manifest against what is actually in the
//! files (entity counts, vocabulary size, embedding dimension, parameter
//! shapes); any disagreement fails with `InvalidData` instead of producing
//! a model that silently serves garbage.

use rrre_core::{Rrre, RrreConfig};
use rrre_data::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_tensor::{Params, Tensor};
use rrre_text::WordVectors;
use rrre_wire::ShardSpec;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Current artifact layout version. Version 2 added per-file FNV-1a
/// checksums; version 3 added the shard spec (consistent-hash topology the
/// artifact was partitioned for — [`ShardSpec::single`] for whole-model
/// bundles). Older versions are rejected (re-save to upgrade).
pub const MANIFEST_VERSION: u32 = 3;

/// File names inside an artifact directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// See [`MANIFEST_FILE`].
pub const DATASET_FILE: &str = "dataset.json";
/// See [`MANIFEST_FILE`].
pub const VECTORS_FILE: &str = "vectors.rrrp";
/// See [`MANIFEST_FILE`].
pub const MODEL_FILE: &str = "model.rrrp";

/// Name of the single tensor inside `vectors.rrrp`.
const VECTORS_PARAM: &str = "corpus.word_vectors";

/// Versioned, human-readable description of an artifact directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactManifest {
    /// Layout version; loads reject anything but [`MANIFEST_VERSION`].
    pub version: u32,
    /// Dataset display name.
    pub dataset_name: String,
    /// Distinct users in the dataset.
    pub n_users: usize,
    /// Distinct items in the dataset.
    pub n_items: usize,
    /// Total reviews in the dataset.
    pub n_reviews: usize,
    /// Fixed encoded-document length of the corpus.
    pub max_len: usize,
    /// Vocabulary min-count the corpus was built with.
    pub min_count: u64,
    /// Word-embedding dimension.
    pub embed_dim: usize,
    /// Vocabulary size (= rows of the word-vector table).
    pub vocab_len: usize,
    /// The model's full hyper-parameter configuration.
    pub config: RrreConfig,
    /// The consistent-hash shard topology this artifact is deployed under.
    /// Carried in the manifest so the map version travels with the
    /// generation: a hot reload that changes the topology changes the map
    /// version atomically with the weights, and every replica and client
    /// that agrees on this spec computes identical entity ownership.
    /// [`ShardSpec::single`] for whole-model bundles.
    pub shard_spec: ShardSpec,
    /// Number of *leading* reviews the vocabulary (and therefore the
    /// word-vector table) was built from. For a freshly trained artifact
    /// this equals `n_reviews`; a compacted artifact that folded streamed
    /// reviews into the dataset keeps the original training prefix here so
    /// the load path rebuilds the *pinned* vocabulary
    /// ([`rrre_data::EncodedCorpus::from_parts_pinned`]) — streamed text is
    /// encoded against the frozen vocab (out-of-vocabulary words drop),
    /// exactly as the live ingest path encoded it.
    pub vocab_reviews: usize,
    /// FNV-1a 64 digest of every payload file, recorded at save time. The
    /// load path re-hashes each file before parsing it, so a bit-flip that
    /// would survive structural validation (e.g. inside a weight tensor)
    /// still fails the load instead of silently serving a corrupt model.
    pub checksums: Vec<FileChecksum>,
}

/// One payload file's digest. The hash rides as a hex string because JSON
/// numbers pass through `f64`, which cannot carry a full-range `u64`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileChecksum {
    /// File name relative to the artifact directory.
    pub file: String,
    /// FNV-1a 64 of the file bytes, lowercase hex.
    pub fnv1a: String,
}

/// FNV-1a 64 of `bytes` as the lowercase hex string the manifest records.
/// Public so tests and tooling can recompute a file's expected digest.
pub fn file_digest(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// FNV-1a 64 over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A loaded serving bundle: dataset + rebuilt corpus + restored model,
/// plus the review index the explain path needs.
pub struct ModelArtifact {
    /// The manifest the bundle was loaded from (or saved with).
    pub manifest: ArtifactManifest,
    /// The review dataset.
    pub dataset: Dataset,
    /// The encoded corpus (vocab, word vectors, encoded docs).
    pub corpus: EncodedCorpus,
    /// The restored model, frozen-cache ready for tape-free inference.
    pub model: Rrre,
    /// Per-user / per-item review index over `dataset`.
    pub index: DatasetIndex,
    /// The directory this artifact was loaded from — the hot-reload path
    /// re-loads from here.
    pub source_dir: PathBuf,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ModelArtifact {
    /// Writes a trained model as an artifact directory (created if absent).
    ///
    /// `min_count` must be the vocabulary min-count the corpus was built
    /// with — it is recorded in the manifest so the load path can rebuild
    /// the identical vocabulary.
    pub fn save(
        dir: impl AsRef<Path>,
        dataset: &Dataset,
        corpus: &EncodedCorpus,
        model: &Rrre,
        min_count: u64,
    ) -> io::Result<()> {
        Self::save_with_shards(dir, dataset, corpus, model, min_count, ShardSpec::single())
    }

    /// [`ModelArtifact::save`] with an explicit shard topology recorded in
    /// the manifest. The payload files are identical regardless of the
    /// spec — every shard's replicas load the same bundle and each engine
    /// scopes itself to its owned partition at serve time — so one `save`
    /// provisions the whole deployment.
    pub fn save_with_shards(
        dir: impl AsRef<Path>,
        dataset: &Dataset,
        corpus: &EncodedCorpus,
        model: &Rrre,
        min_count: u64,
        shard_spec: ShardSpec,
    ) -> io::Result<()> {
        Self::save_pinned(dir, dataset, corpus, model, min_count, shard_spec, dataset.len())
    }

    /// [`ModelArtifact::save_with_shards`] with an explicit vocabulary
    /// prefix. The compactor uses this to fold streamed reviews into the
    /// dataset while carrying the *original* training prefix forward in
    /// `vocab_reviews`, so reloading the compacted artifact rebuilds the
    /// identical frozen vocabulary the live ingest path encoded against.
    pub fn save_pinned(
        dir: impl AsRef<Path>,
        dataset: &Dataset,
        corpus: &EncodedCorpus,
        model: &Rrre,
        min_count: u64,
        shard_spec: ShardSpec,
        vocab_reviews: usize,
    ) -> io::Result<()> {
        shard_spec.validate().map_err(invalid)?;
        if vocab_reviews > dataset.len() {
            return Err(invalid(format!(
                "vocab_reviews {vocab_reviews} exceeds the dataset's {} reviews",
                dataset.len()
            )));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;

        // Payloads first; the checksummed manifest goes last so a crash
        // mid-save leaves a directory the load path rejects (missing or
        // stale manifest) rather than one that looks complete.
        rrre_data::io::save_json(dataset, dir.join(DATASET_FILE))?;

        let mut vectors = Params::new();
        vectors.register(
            VECTORS_PARAM,
            Tensor::from_vec(
                corpus.word_vectors.len(),
                corpus.embed_dim(),
                corpus.word_vectors.as_flat().to_vec(),
            ),
        );
        vectors.save(dir.join(VECTORS_FILE))?;

        model.save_weights(dir.join(MODEL_FILE))?;

        let mut checksums = Vec::new();
        for file in [DATASET_FILE, VECTORS_FILE, MODEL_FILE] {
            let bytes = std::fs::read(dir.join(file))?;
            checksums.push(FileChecksum { file: file.to_string(), fnv1a: file_digest(&bytes) });
        }

        let manifest = ArtifactManifest {
            version: MANIFEST_VERSION,
            dataset_name: dataset.name.clone(),
            n_users: dataset.n_users,
            n_items: dataset.n_items,
            n_reviews: dataset.len(),
            max_len: corpus.max_len,
            min_count,
            embed_dim: corpus.embed_dim(),
            vocab_len: corpus.word_vectors.len(),
            config: *model.config(),
            shard_spec,
            vocab_reviews,
            checksums,
        };
        let json = serde_json::to_string_pretty(&manifest).map_err(io::Error::other)?;
        std::fs::write(dir.join(MANIFEST_FILE), json)
    }

    /// Loads and validates an artifact directory, restoring the model via
    /// [`Rrre::from_checkpoint`] — no training pass runs. On success the
    /// model is frozen-cache ready regardless of its encoder mode.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();

        let manifest_json = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let manifest: ArtifactManifest =
            serde_json::from_str(&manifest_json).map_err(|e| invalid(format!("bad manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(invalid(format!(
                "unsupported artifact version {} (this build reads {MANIFEST_VERSION})",
                manifest.version
            )));
        }
        manifest
            .shard_spec
            .validate()
            .map_err(|e| invalid(format!("bad shard spec in manifest: {e}")))?;

        // Verify every payload digest before parsing anything: structural
        // validation cannot see a flipped bit inside a weight value.
        for file in [DATASET_FILE, VECTORS_FILE, MODEL_FILE] {
            let recorded = manifest
                .checksums
                .iter()
                .find(|c| c.file == file)
                .ok_or_else(|| invalid(format!("manifest records no checksum for {file}")))?;
            let bytes = std::fs::read(dir.join(file))?;
            let actual = file_digest(&bytes);
            if actual != recorded.fnv1a {
                return Err(invalid(format!(
                    "{file} checksum mismatch: manifest says {}, file hashes to {actual} \
                     (truncated or corrupted artifact)",
                    recorded.fnv1a
                )));
            }
        }

        let dataset = rrre_data::io::load_json(dir.join(DATASET_FILE))?;
        if dataset.n_users != manifest.n_users
            || dataset.n_items != manifest.n_items
            || dataset.len() != manifest.n_reviews
        {
            return Err(invalid(format!(
                "dataset shape ({} users, {} items, {} reviews) disagrees with manifest \
                 ({}, {}, {})",
                dataset.n_users,
                dataset.n_items,
                dataset.len(),
                manifest.n_users,
                manifest.n_items,
                manifest.n_reviews
            )));
        }

        let vectors = Params::load(dir.join(VECTORS_FILE))?;
        let table = vectors
            .iter()
            .find(|(_, name, _)| *name == VECTORS_PARAM)
            .map(|(_, _, value)| value)
            .ok_or_else(|| invalid(format!("vectors file has no `{VECTORS_PARAM}` tensor")))?;
        let (rows, cols) = table.shape();
        if rows != manifest.vocab_len || cols != manifest.embed_dim {
            return Err(invalid(format!(
                "word-vector table is {rows}x{cols} but the manifest declares {}x{}",
                manifest.vocab_len, manifest.embed_dim
            )));
        }
        let word_vectors = WordVectors::from_flat(cols, table.as_slice().to_vec());

        let corpus = EncodedCorpus::from_parts_pinned(
            &dataset,
            manifest.max_len,
            manifest.min_count,
            word_vectors,
            manifest.vocab_reviews,
        )
        .map_err(invalid)?;

        let mut model =
            Rrre::from_checkpoint(&dataset, &corpus, manifest.config, dir.join(MODEL_FILE))?;
        model.freeze_for_inference(&corpus);

        let index = dataset.index();
        Ok(Self { manifest, dataset, corpus, model, index, source_dir: dir.to_path_buf() })
    }
}
