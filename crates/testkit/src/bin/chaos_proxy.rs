//! `rrre-chaos-proxy` — standalone chaos proxy for shell-driven drills.
//!
//! Binds a listen address in front of one upstream replica and injects
//! faults from a seeded schedule, exactly like the in-process
//! [`rrre_testkit::chaos::ChaosProxy`] (it *is* that proxy, with flags).
//! Prints `listening on ADDR` on stdout so scripts can scrape the bound
//! port, then runs until stdin reaches EOF (or the process is killed).
//!
//! ```text
//! rrre-chaos-proxy --upstream 127.0.0.1:7000 [--listen 127.0.0.1:0]
//!                  [--seed N] [--reset-prob P] [--blackhole-prob P]
//!                  [--corrupt-prob P] [--delay-prob P] [--max-delay-ms N]
//! ```

use rrre_testkit::chaos::{ChaosConfig, ChaosProxy};
use std::io::Read;

fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {name} requires a value");
        std::process::exit(2);
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn parse<T: std::str::FromStr>(name: &str, value: String) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {name} got an unparsable value `{value}`");
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ChaosConfig::default();
    let listen = take_flag(&mut args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let upstream = take_flag(&mut args, "--upstream").unwrap_or_else(|| {
        eprintln!("error: --upstream HOST:PORT is required");
        std::process::exit(2);
    });
    if let Some(v) = take_flag(&mut args, "--seed") {
        cfg.seed = parse("--seed", v);
    }
    if let Some(v) = take_flag(&mut args, "--reset-prob") {
        cfg.reset_prob = parse("--reset-prob", v);
    }
    if let Some(v) = take_flag(&mut args, "--blackhole-prob") {
        cfg.blackhole_prob = parse("--blackhole-prob", v);
    }
    if let Some(v) = take_flag(&mut args, "--corrupt-prob") {
        cfg.corrupt_prob = parse("--corrupt-prob", v);
    }
    if let Some(v) = take_flag(&mut args, "--delay-prob") {
        cfg.delay_prob = parse("--delay-prob", v);
    }
    if let Some(v) = take_flag(&mut args, "--max-delay-ms") {
        cfg.max_delay_ms = parse("--max-delay-ms", v);
    }
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments: {args:?}");
        std::process::exit(2);
    }

    let mut proxy = match ChaosProxy::start_on(listen.as_str(), upstream.as_str(), cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", proxy.local_addr());
    eprintln!(
        "chaos-proxy: {} -> {} seed={} reset={} blackhole={} corrupt={} delay={} max_delay_ms={}",
        proxy.local_addr(),
        upstream,
        cfg.seed,
        cfg.reset_prob,
        cfg.blackhole_prob,
        cfg.corrupt_prob,
        cfg.delay_prob,
        cfg.max_delay_ms
    );

    // Park on stdin: the proxy runs until stdin hits EOF or errors, so a
    // driving script controls the lifetime by holding the pipe open (and
    // must NOT redirect from /dev/null, which is instant EOF).
    let mut sink = [0u8; 256];
    loop {
        match std::io::stdin().read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let stats = proxy.stats();
    eprintln!(
        "chaos-proxy: done connections={} resets={} blackholed={} delayed={} corrupted={} truncated_req={} truncated_resp={} swallowed={}",
        stats.connections,
        stats.resets,
        stats.blackholed,
        stats.delayed,
        stats.corrupted,
        stats.truncated_requests,
        stats.truncated_responses,
        stats.swallowed
    );
    proxy.stop();
}
