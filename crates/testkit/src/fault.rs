//! Fault injection for serve robustness tests.
//!
//! Helpers that deliberately damage artifacts on disk or misbehave on the
//! wire so tests can assert the serve stack degrades with *structured*
//! errors instead of panics or silent connection drops.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

/// Truncates a file to `len` bytes (must be shorter than the file).
pub fn truncate_file(path: impl AsRef<Path>, len: u64) -> std::io::Result<()> {
    let path = path.as_ref();
    let meta = std::fs::metadata(path)?;
    assert!(len < meta.len(), "truncate_file: {len} does not shorten {} ({} bytes)", path.display(), meta.len());
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)
}

/// Flips every bit of the byte at `offset` (XOR `0xFF`), rewriting the file
/// in place. Returns the original byte so tests can assert it changed.
pub fn flip_byte(path: impl AsRef<Path>, offset: usize) -> std::io::Result<u8> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path)?;
    assert!(offset < bytes.len(), "flip_byte: offset {offset} past end of {} ({} bytes)", path.display(), bytes.len());
    let original = bytes[offset];
    bytes[offset] ^= 0xFF;
    std::fs::write(path, bytes)?;
    Ok(original)
}

/// Shaves the last `bytes` bytes off a file — the shape of a torn write: a
/// record whose tail never reached the disk before the crash. Returns the
/// new length. Panics if the file is not strictly longer than `bytes`
/// (shaving a whole file is a missing file, a different fault).
pub fn shave_tail(path: impl AsRef<Path>, bytes: u64) -> std::io::Result<u64> {
    let path = path.as_ref();
    let len = std::fs::metadata(path)?.len();
    assert!(len > bytes, "shave_tail: {} is only {len} bytes, cannot shave {bytes}", path.display());
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    let new_len = len - bytes;
    file.set_len(new_len)?;
    Ok(new_len)
}

/// The WAL segment files under `wal_dir` (`seg-*.log`), sorted by segment
/// index — `last()` is the active tail segment, the torn-write target.
pub fn wal_segments(wal_dir: impl AsRef<Path>) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut segments: Vec<_> = std::fs::read_dir(wal_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    Ok(segments)
}

/// A syntactically valid NDJSON request line padded with spaces to exceed
/// `limit` bytes — for testing the server's line-length bound.
pub fn oversized_line(limit: usize) -> String {
    let body = r#"{"op": "stats"#;
    let tail = r#""}"#;
    let pad = limit.saturating_sub(body.len() + tail.len()) + 2;
    format!("{body}{}{tail}", " ".repeat(pad))
}

/// Connects, writes only the first `bytes` bytes of `line` (no trailing
/// newline) and immediately shuts the write half — a mid-stream disconnect
/// with a partial request on the wire. Returns whatever the server sends
/// back before closing (possibly empty).
pub fn send_partial_line(addr: SocketAddr, line: &str, bytes: usize) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let cut = bytes.min(line.len());
    stream.write_all(&line.as_bytes()[..cut])?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply)?;
    Ok(reply)
}

/// Sends one complete request line and reads one NDJSON response line.
/// The connection is dropped on return (another mid-stream disconnect from
/// the server's point of view if it expected more requests).
pub fn roundtrip_line(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::TempDir;

    #[test]
    fn truncate_and_flip_damage_files() {
        let dir = TempDir::new("fault-files");
        let path = dir.file("blob.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let original = flip_byte(&path, 3).unwrap();
        assert_eq!(original, 4);
        assert_eq!(std::fs::read(&path).unwrap()[3], 4 ^ 0xFF);
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2]);
    }

    #[test]
    fn shave_tail_and_segment_listing_cover_the_wal_shapes() {
        let dir = TempDir::new("fault-wal");
        std::fs::write(dir.file("seg-00000002.log"), [0u8; 16]).unwrap();
        std::fs::write(dir.file("seg-00000000.log"), [0u8; 16]).unwrap();
        std::fs::write(dir.file("ledger.json"), b"{}").unwrap();
        let segs = wal_segments(dir.path()).unwrap();
        assert_eq!(segs.len(), 2, "only seg-*.log files are segments");
        assert!(segs[1].ends_with("seg-00000002.log"), "sorted by index, tail last");
        let new_len = shave_tail(&segs[1], 5).unwrap();
        assert_eq!(new_len, 11);
        assert_eq!(std::fs::metadata(&segs[1]).unwrap().len(), 11);
    }

    #[test]
    fn oversized_line_exceeds_limit_and_stays_one_line() {
        let line = oversized_line(256);
        assert!(line.len() > 256);
        assert!(!line.contains('\n'));
    }
}
