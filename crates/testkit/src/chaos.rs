//! Deterministic chaos proxy: a TCP interposer that injects network
//! faults between a client and one upstream replica.
//!
//! Every fault decision is drawn from one seeded RNG, **in accept order**:
//! given the same seed, the same [`ChaosConfig`] and the same sequence of
//! connections, the proxy injects the same faults at the same points. No
//! wall-clock randomness anywhere — chaos runs replay.
//!
//! Two control surfaces:
//!
//! * **probabilistic** — [`ChaosConfig`] probabilities, rolled per
//!   accepted connection from the seeded RNG;
//! * **forced** — [`ChaosProxy::force_once`] /
//!   [`ChaosProxy::set_forced`] override the roll for the next (or every)
//!   connection, for tests that need a *specific* fault at a *specific*
//!   request. Forced faults consume no RNG draws, so forcing one fault
//!   does not shift the schedule of every probabilistic fault after it.
//!
//! [`ChaosProxy::set_upstream`] retargets the proxy live, so a client can
//! keep one stable endpoint address while the replica behind it is
//! killed and restarted on a new port — exactly the failover drill the
//! resilience tests run.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pump loops and the accept loop re-check the stop flag.
const POLL: Duration = Duration::from_millis(10);

/// One injected network fault, scoped to a single proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close the client connection immediately on accept, before reading
    /// a byte (the client sees an abrupt reset/EOF on first use).
    ResetOnAccept,
    /// Accept and read the client's bytes but never forward or respond —
    /// the connection is a black hole and the client must time out.
    Blackhole,
    /// Sleep this long before forwarding each response chunk (latency
    /// injection; the trigger for hedging).
    Delay(Duration),
    /// Forward only a prefix of the first request chunk upstream — the
    /// server sees a mid-line disconnect — then drop the connection.
    TruncateRequest,
    /// Flip a byte in the first response chunk (the client must detect
    /// undecodable bytes instead of trusting the stream).
    CorruptResponse,
    /// Forward only a prefix of the first response chunk, then drop the
    /// connection (the client sees a truncated line + EOF).
    TruncateResponse,
    /// Deliver the request upstream, then discard the response and drop
    /// the connection — the request **executed** but the client cannot
    /// know; the probe for retry-idempotency discipline.
    SwallowResponse,
}

/// Probabilistic fault schedule. All probabilities are rolled once per
/// accepted connection, in this order: reset, blackhole, corrupt, delay;
/// the first hit wins. Defaults to a transparent proxy (all zero).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the fault-schedule RNG.
    pub seed: u64,
    /// Probability of [`Fault::ResetOnAccept`].
    pub reset_prob: f64,
    /// Probability of [`Fault::Blackhole`].
    pub blackhole_prob: f64,
    /// Probability of [`Fault::CorruptResponse`].
    pub corrupt_prob: f64,
    /// Probability of [`Fault::Delay`].
    pub delay_prob: f64,
    /// Upper bound (inclusive, ms) of an injected delay; the actual delay
    /// is drawn from `1..=max_delay_ms`.
    pub max_delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A05,
            reset_prob: 0.0,
            blackhole_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 50,
        }
    }
}

/// Counters of what the proxy actually did (totals since start).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections reset on accept.
    pub resets: u64,
    /// Connections black-holed.
    pub blackholed: u64,
    /// Connections with a delayed response path.
    pub delayed: u64,
    /// Connections whose request was truncated mid-line.
    pub truncated_requests: u64,
    /// Connections whose response was corrupted.
    pub corrupted: u64,
    /// Connections whose response was truncated.
    pub truncated_responses: u64,
    /// Connections whose response was swallowed after delivery upstream.
    pub swallowed: u64,
}

#[derive(Default)]
struct StatCells {
    connections: AtomicU64,
    resets: AtomicU64,
    blackholed: AtomicU64,
    delayed: AtomicU64,
    truncated_requests: AtomicU64,
    corrupted: AtomicU64,
    truncated_responses: AtomicU64,
    swallowed: AtomicU64,
}

struct Inner {
    stop: AtomicBool,
    upstream: Mutex<String>,
    cfg: ChaosConfig,
    rng: Mutex<StdRng>,
    forced_once: Mutex<VecDeque<Fault>>,
    forced_all: Mutex<Option<Fault>>,
    stats: StatCells,
}

impl Inner {
    /// Decides this connection's fault: forced queue first, then the
    /// standing override, then the seeded probabilistic roll.
    fn plan(&self) -> Option<Fault> {
        if let Some(f) = self.forced_once.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
            return Some(f);
        }
        if let Some(f) = *self.forced_all.lock().unwrap_or_else(|e| e.into_inner()) {
            return Some(f);
        }
        let cfg = &self.cfg;
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        if cfg.reset_prob > 0.0 && rng.gen_bool(cfg.reset_prob) {
            return Some(Fault::ResetOnAccept);
        }
        if cfg.blackhole_prob > 0.0 && rng.gen_bool(cfg.blackhole_prob) {
            return Some(Fault::Blackhole);
        }
        if cfg.corrupt_prob > 0.0 && rng.gen_bool(cfg.corrupt_prob) {
            return Some(Fault::CorruptResponse);
        }
        if cfg.delay_prob > 0.0 && rng.gen_bool(cfg.delay_prob) {
            let ms = rng.gen_range(1..=cfg.max_delay_ms.max(1));
            return Some(Fault::Delay(Duration::from_millis(ms)));
        }
        None
    }
}

/// A running chaos proxy. Dropped or [`ChaosProxy::stop`]ped, it closes
/// its listener and joins its accept thread; per-connection pump threads
/// observe the stop flag within one poll interval.
pub struct ChaosProxy {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port in front of `upstream` and starts
    /// proxying.
    pub fn start(upstream: impl Into<String>, cfg: ChaosConfig) -> std::io::Result<Self> {
        Self::start_on("127.0.0.1:0", upstream, cfg)
    }

    /// [`ChaosProxy::start`] with an explicit listen address.
    pub fn start_on(
        listen: impl ToSocketAddrs,
        upstream: impl Into<String>,
        cfg: ChaosConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            stop: AtomicBool::new(false),
            upstream: Mutex::new(upstream.into()),
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            cfg,
            forced_once: Mutex::new(VecDeque::new()),
            forced_all: Mutex::new(None),
            stats: StatCells::default(),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("rrre-chaos-accept".into())
                .spawn(move || accept_loop(&listener, &inner))?
        };
        Ok(Self { addr, inner, accept: Some(accept) })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Retargets the proxy to a new upstream address. Existing pumped
    /// connections keep their old upstream; new connections use the new
    /// one — which is exactly what a replica restart looks like to a
    /// client holding a stable endpoint.
    pub fn set_upstream(&self, upstream: impl Into<String>) {
        *self.inner.upstream.lock().unwrap_or_else(|e| e.into_inner()) = upstream.into();
    }

    /// Queues a fault for the next accepted connection (FIFO if called
    /// repeatedly). Consumes no RNG draws.
    pub fn force_once(&self, fault: Fault) {
        self.inner.forced_once.lock().unwrap_or_else(|e| e.into_inner()).push_back(fault);
    }

    /// Sets (or with `None` clears) a fault applied to every subsequent
    /// connection, overriding the probabilistic schedule.
    pub fn set_forced(&self, fault: Option<Fault>) {
        *self.inner.forced_all.lock().unwrap_or_else(|e| e.into_inner()) = fault;
    }

    /// What the proxy has done so far.
    pub fn stats(&self) -> ChaosStats {
        let s = &self.inner.stats;
        ChaosStats {
            connections: s.connections.load(Ordering::SeqCst),
            resets: s.resets.load(Ordering::SeqCst),
            blackholed: s.blackholed.load(Ordering::SeqCst),
            delayed: s.delayed.load(Ordering::SeqCst),
            truncated_requests: s.truncated_requests.load(Ordering::SeqCst),
            corrupted: s.corrupted.load(Ordering::SeqCst),
            truncated_responses: s.truncated_responses.load(Ordering::SeqCst),
            swallowed: s.swallowed.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting and joins the accept thread. Idempotent.
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        let (client, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
                continue;
            }
            Err(_) => continue,
        };
        if client.set_nonblocking(false).is_err() {
            continue;
        }
        inner.stats.connections.fetch_add(1, Ordering::SeqCst);
        let plan = inner.plan();
        let upstream = inner.upstream.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("rrre-chaos-conn".into())
            .spawn(move || handle_conn(client, &upstream, plan, &inner));
        drop(spawned);
    }
}

fn handle_conn(client: TcpStream, upstream: &str, plan: Option<Fault>, inner: &Arc<Inner>) {
    match plan {
        Some(Fault::ResetOnAccept) => {
            inner.stats.resets.fetch_add(1, Ordering::SeqCst);
            // Dropping the socket sends FIN immediately; the client's next
            // read sees EOF before any response could exist.
        }
        Some(Fault::Blackhole) => {
            inner.stats.blackholed.fetch_add(1, Ordering::SeqCst);
            blackhole(client, inner);
        }
        other => {
            let Some(addr) = upstream.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
                return;
            };
            let Ok(server) = TcpStream::connect_timeout(&addr, Duration::from_secs(1)) else {
                return; // upstream down: client sees an immediate close
            };
            pump_pair(client, server, other, inner);
        }
    }
}

/// Reads and discards client bytes until EOF or proxy stop; never writes.
fn blackhole(client: TcpStream, inner: &Arc<Inner>) {
    let _ = client.set_read_timeout(Some(POLL));
    let mut sink = [0u8; 4096];
    let mut client = client;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match client.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

/// What a pump does with one freshly read chunk.
enum Action {
    /// Forward the (possibly mutated) chunk and keep pumping.
    Forward,
    /// Forward the chunk, then tear the connection pair down.
    ForwardThenClose,
    /// Discard the chunk and tear the connection pair down.
    DropThenClose,
}

/// Bidirectional byte pump with per-direction fault hooks. Runs the
/// response direction on the current thread and the request direction on a
/// helper; when either direction ends, both sockets are shut down so the
/// other unblocks promptly.
fn pump_pair(client: TcpStream, server: TcpStream, fault: Option<Fault>, inner: &Arc<Inner>) {
    let done = Arc::new(AtomicBool::new(false));
    let c2s = (client.try_clone(), server.try_clone());
    let (Ok(client_read), Ok(server_write)) = c2s else { return };

    // Request direction: client → server.
    let req_handle = {
        let inner = Arc::clone(inner);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut first = true;
            pump(client_read, server_write, &inner, &done, move |chunk, stats| {
                let action = match fault {
                    Some(Fault::TruncateRequest) if first => {
                        stats.truncated_requests.fetch_add(1, Ordering::SeqCst);
                        // Cut mid-line: drop the trailing newline plus a
                        // couple of payload bytes so the server sees a
                        // partial line, then EOF.
                        let keep = chunk.len().saturating_sub(3).max(1).min(chunk.len());
                        chunk.truncate(keep);
                        Action::ForwardThenClose
                    }
                    _ => Action::Forward,
                };
                first = false;
                action
            });
        })
    };

    // Response direction: server → client.
    {
        let done = Arc::clone(&done);
        let mut first = true;
        pump(server, client, inner, &done, move |chunk, stats| {
            match fault {
                Some(Fault::Delay(d)) => {
                    if first {
                        stats.delayed.fetch_add(1, Ordering::SeqCst);
                    }
                    first = false;
                    std::thread::sleep(d);
                    Action::Forward
                }
                Some(Fault::CorruptResponse) if first => {
                    first = false;
                    stats.corrupted.fetch_add(1, Ordering::SeqCst);
                    if let Some(b) = chunk.first_mut() {
                        *b ^= 0x5A;
                    }
                    Action::Forward
                }
                Some(Fault::TruncateResponse) if first => {
                    first = false;
                    stats.truncated_responses.fetch_add(1, Ordering::SeqCst);
                    let keep = chunk.len().saturating_sub(3).max(1).min(chunk.len());
                    chunk.truncate(keep);
                    Action::ForwardThenClose
                }
                Some(Fault::SwallowResponse) if first => {
                    first = false;
                    stats.swallowed.fetch_add(1, Ordering::SeqCst);
                    Action::DropThenClose
                }
                _ => {
                    first = false;
                    Action::Forward
                }
            }
        });
    }
    let _ = req_handle.join();
}

/// One pump direction: read chunks from `from`, pass them through `fate`,
/// write survivors to `to`. Ends on EOF, hard error, proxy stop, or the
/// shared `done` flag (set whenever either direction decides to close);
/// on exit both sockets are shut down.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    inner: &Arc<Inner>,
    done: &Arc<AtomicBool>,
    mut fate: impl FnMut(&mut Vec<u8>, &StatCells) -> Action,
) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if inner.stop.load(Ordering::SeqCst) || done.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        let mut chunk = buf[..n].to_vec();
        match fate(&mut chunk, &inner.stats) {
            Action::Forward => {
                if to.write_all(&chunk).and_then(|_| to.flush()).is_err() {
                    break;
                }
            }
            Action::ForwardThenClose => {
                let _ = to.write_all(&chunk).and_then(|_| to.flush());
                break;
            }
            Action::DropThenClose => break,
        }
    }
    done.store(true, Ordering::SeqCst);
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A trivial upstream echo-line server: answers every line with
    /// `ack:<line>`.
    fn echo_server() -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        if writer.write_all(format!("ack:{line}\n").as_bytes()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn exchange_line(addr: &SocketAddr, line: &str, timeout: Duration) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream);
        let mut out = String::new();
        match reader.read_line(&mut out)? {
            0 => Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed")),
            _ if out.ends_with('\n') => Ok(out.trim_end().to_string()),
            _ => Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "truncated")),
        }
    }

    #[test]
    fn transparent_proxy_passes_lines_through() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream, ChaosConfig::default()).unwrap();
        let out = exchange_line(&proxy.local_addr(), "hello", Duration::from_secs(1)).unwrap();
        assert_eq!(out, "ack:hello");
        assert_eq!(proxy.stats().connections, 1);
    }

    #[test]
    fn forced_faults_break_the_exchange_in_distinct_ways() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream, ChaosConfig::default()).unwrap();
        let t = Duration::from_millis(300);

        proxy.force_once(Fault::ResetOnAccept);
        assert!(exchange_line(&proxy.local_addr(), "a", t).is_err(), "reset must kill the exchange");

        proxy.force_once(Fault::SwallowResponse);
        assert!(exchange_line(&proxy.local_addr(), "b", t).is_err(), "swallowed response must look like EOF");

        proxy.force_once(Fault::CorruptResponse);
        let corrupted = exchange_line(&proxy.local_addr(), "c", t).unwrap();
        assert_ne!(corrupted, "ack:c", "corruption must alter the bytes");

        proxy.force_once(Fault::Blackhole);
        let err = exchange_line(&proxy.local_addr(), "d", t).unwrap_err();
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "blackhole must time the client out, got {err:?}"
        );

        // And afterwards the proxy is transparent again.
        let out = exchange_line(&proxy.local_addr(), "e", t).unwrap();
        assert_eq!(out, "ack:e");

        let stats = proxy.stats();
        assert_eq!(stats.resets, 1);
        assert_eq!(stats.swallowed, 1);
        assert_eq!(stats.corrupted, 1);
        assert_eq!(stats.blackholed, 1);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let draw_schedule = |seed: u64| {
            let inner = Inner {
                stop: AtomicBool::new(false),
                upstream: Mutex::new(String::new()),
                cfg: ChaosConfig {
                    seed,
                    reset_prob: 0.2,
                    corrupt_prob: 0.3,
                    delay_prob: 0.5,
                    max_delay_ms: 20,
                    ..ChaosConfig::default()
                },
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                forced_once: Mutex::new(VecDeque::new()),
                forced_all: Mutex::new(None),
                stats: StatCells::default(),
            };
            (0..64).map(|_| inner.plan()).collect::<Vec<_>>()
        };
        assert_eq!(draw_schedule(7), draw_schedule(7), "same seed must replay the same schedule");
        assert_ne!(draw_schedule(7), draw_schedule(8), "different seeds must differ");
        let variety = draw_schedule(7);
        assert!(variety.iter().any(|f| f.is_none()), "some connections must pass through");
        assert!(variety.iter().any(|f| f.is_some()), "some connections must be faulted");
    }

    #[test]
    fn set_upstream_retargets_new_connections() {
        let (up_a, _ha) = echo_server();
        let proxy = ChaosProxy::start(up_a, ChaosConfig::default()).unwrap();
        let t = Duration::from_secs(1);
        assert_eq!(exchange_line(&proxy.local_addr(), "x", t).unwrap(), "ack:x");

        // Second upstream answers differently so retargeting is observable.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_b = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if writer.write_all(format!("B:{line}\n").as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        proxy.set_upstream(up_b);
        assert_eq!(exchange_line(&proxy.local_addr(), "x", t).unwrap(), "B:x");
    }
}
