//! Golden-trace regression harness.
//!
//! A [`GoldenTrace`] captures everything a training run is supposed to
//! reproduce: the per-epoch loss curve (`loss`, `loss1`, `loss2`), the
//! post-training evaluation metrics and a probe of final head outputs on
//! deterministic user/item pairs. Traces are serialized to committed JSON
//! files and re-checked on every `cargo test` via [`check_golden`]; when a
//! change is *intended*, rerun with `RRRE_UPDATE_GOLDENS=1` to rewrite the
//! files and commit the diff.
//!
//! Tolerances are deliberately far tighter than any real modelling change
//! could stay inside: the whole pipeline is seeded, so a healthy run
//! reproduces the goldens bit-for-bit and the bands only absorb
//! cross-platform libm noise.

use crate::fixtures::{trained_fixture_traced, Fixture, FixtureSpec};
use crate::parity::deterministic_pairs;
use rrre_core::evaluate;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Environment variable that switches [`check_golden`] from compare mode to
/// regenerate mode.
pub const UPDATE_ENV: &str = "RRRE_UPDATE_GOLDENS";

/// One epoch of the training loss curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean joint loss.
    pub loss: f64,
    /// Mean reliability cross-entropy (loss₁).
    pub loss1: f64,
    /// Mean biased rating MSE (loss₂).
    pub loss2: f64,
}

/// Post-training evaluation metrics over the training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// ROC-AUC of the reliability head.
    pub auc: f64,
    /// Average precision ranking benign reviews first.
    pub ap_benign: f64,
    /// Plain RMSE of the rating head.
    pub rmse: f64,
    /// Biased RMSE (Eq. 17) over benign reviews.
    pub brmse: f64,
}

/// Final head outputs for one probed user/item pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadRecord {
    /// Probed user id.
    pub user: u32,
    /// Probed item id.
    pub item: u32,
    /// Predicted rating.
    pub rating: f64,
    /// Predicted reliability.
    pub reliability: f64,
}

/// A full recorded training trace: loss curve + metrics + head probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenTrace {
    /// Per-epoch loss curve, in epoch order.
    pub epochs: Vec<EpochRecord>,
    /// Evaluation metrics after the final epoch.
    pub eval: EvalRecord,
    /// Final head outputs on deterministic probe pairs.
    pub heads: Vec<HeadRecord>,
}

/// Absolute tolerance bands for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct GoldenTolerance {
    /// Band for each loss component.
    pub loss: f64,
    /// Band for each evaluation metric.
    pub metric: f64,
    /// Band for each head output.
    pub head: f64,
}

impl Default for GoldenTolerance {
    fn default() -> Self {
        // Everything is seeded, so honest runs match bit-for-bit; these
        // bands exist only for libm drift and sit well under the 1e-3
        // perturbation the harness must reject.
        Self { loss: 2e-4, metric: 2e-4, head: 2e-4 }
    }
}

/// Trains `spec`'s fixture while recording its trace, evaluates it on the
/// training set and probes `n_heads` deterministic pairs. Returns the trace
/// together with the trained fixture so callers can keep testing it.
pub fn capture(spec: FixtureSpec, n_heads: usize) -> (GoldenTrace, Fixture) {
    let mut epochs = Vec::new();
    let fixture = trained_fixture_traced(spec, |stats| {
        epochs.push(EpochRecord {
            epoch: stats.epoch,
            loss: stats.loss as f64,
            loss1: stats.loss1 as f64,
            loss2: stats.loss2 as f64,
        });
    });
    let joint = evaluate(&fixture.model, &fixture.dataset, &fixture.corpus, &fixture.train);
    let eval = EvalRecord { auc: joint.auc, ap_benign: joint.ap_benign, rmse: joint.rmse, brmse: joint.brmse };
    let heads = deterministic_pairs(&fixture.dataset, spec.seed, n_heads)
        .into_iter()
        .map(|(u, i)| {
            let p = fixture.model.predict(&fixture.corpus, u, i);
            HeadRecord { user: u.0, item: i.0, rating: p.rating as f64, reliability: p.reliability as f64 }
        })
        .collect();
    (GoldenTrace { epochs, eval, heads }, fixture)
}

fn check(errors: &mut Vec<String>, what: impl std::fmt::Display, golden: f64, actual: f64, tol: f64) {
    let diff = (golden - actual).abs();
    if !(diff <= tol) {
        errors.push(format!("{what}: golden {golden} vs actual {actual} (|Δ| = {diff:e} > {tol:e})"));
    }
}

/// Compares an actual trace against the golden one under `tol`, returning
/// every violated band (not just the first) so regressions are diagnosable
/// from one failure message.
pub fn compare(golden: &GoldenTrace, actual: &GoldenTrace, tol: GoldenTolerance) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if golden.epochs.len() != actual.epochs.len() {
        errors.push(format!("epoch count: golden {} vs actual {}", golden.epochs.len(), actual.epochs.len()));
    }
    for (g, a) in golden.epochs.iter().zip(&actual.epochs) {
        if g.epoch != a.epoch {
            errors.push(format!("epoch index: golden {} vs actual {}", g.epoch, a.epoch));
        }
        check(&mut errors, format!("epoch {} loss", g.epoch), g.loss, a.loss, tol.loss);
        check(&mut errors, format!("epoch {} loss1", g.epoch), g.loss1, a.loss1, tol.loss);
        check(&mut errors, format!("epoch {} loss2", g.epoch), g.loss2, a.loss2, tol.loss);
    }
    check(&mut errors, "eval auc", golden.eval.auc, actual.eval.auc, tol.metric);
    check(&mut errors, "eval ap_benign", golden.eval.ap_benign, actual.eval.ap_benign, tol.metric);
    check(&mut errors, "eval rmse", golden.eval.rmse, actual.eval.rmse, tol.metric);
    check(&mut errors, "eval brmse", golden.eval.brmse, actual.eval.brmse, tol.metric);
    if golden.heads.len() != actual.heads.len() {
        errors.push(format!("head count: golden {} vs actual {}", golden.heads.len(), actual.heads.len()));
    }
    for (g, a) in golden.heads.iter().zip(&actual.heads) {
        if (g.user, g.item) != (a.user, a.item) {
            errors.push(format!(
                "head pair: golden u{}/i{} vs actual u{}/i{}",
                g.user, g.item, a.user, a.item
            ));
            continue;
        }
        check(&mut errors, format!("head u{}/i{} rating", g.user, g.item), g.rating, a.rating, tol.head);
        check(&mut errors, format!("head u{}/i{} reliability", g.user, g.item), g.reliability, a.reliability, tol.head);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Checks `actual` against the committed golden file at `path`.
///
/// * With `RRRE_UPDATE_GOLDENS=1` the file is (re)written and the check
///   passes — commit the resulting diff.
/// * Otherwise the file must exist, parse, and match within `tol`;
///   any violation panics with the full list of out-of-band values.
pub fn check_golden(path: impl AsRef<Path>, actual: &GoldenTrace, tol: GoldenTolerance) {
    let path = path.as_ref();
    if std::env::var(UPDATE_ENV).as_deref() == Ok("1") {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("check_golden: cannot create golden dir");
        }
        let json = serde_json::to_string_pretty(actual).expect("check_golden: serialize");
        std::fs::write(path, json + "\n").expect("check_golden: write golden file");
        eprintln!("check_golden: regenerated {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "check_golden: cannot read golden file {} ({e}).\n\
             Generate it with: RRRE_UPDATE_GOLDENS=1 cargo test -q",
            path.display()
        )
    });
    let golden: GoldenTrace = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("check_golden: golden file {} is not valid JSON: {e:?}", path.display()));
    if let Err(errors) = compare(&golden, actual, tol) {
        panic!(
            "golden trace mismatch against {} ({} violation(s)):\n  {}\n\
             If this change is intended, regenerate with RRRE_UPDATE_GOLDENS=1 cargo test -q and commit the diff.",
            path.display(),
            errors.len(),
            errors.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> GoldenTrace {
        GoldenTrace {
            epochs: vec![EpochRecord { epoch: 0, loss: 1.5, loss1: 0.9, loss2: 2.1 }],
            eval: EvalRecord { auc: 0.75, ap_benign: 0.8, rmse: 1.1, brmse: 1.0 },
            heads: vec![HeadRecord { user: 3, item: 7, rating: 4.2, reliability: 0.6 }],
        }
    }

    #[test]
    fn identical_traces_compare_clean() {
        assert!(compare(&trace(), &trace(), GoldenTolerance::default()).is_ok());
    }

    #[test]
    fn perturbation_of_1e_3_is_rejected() {
        let golden = trace();
        let mut bad = trace();
        bad.epochs[0].loss += 1e-3;
        let errors = compare(&golden, &bad, GoldenTolerance::default()).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("epoch 0 loss"), "{errors:?}");
    }

    #[test]
    fn nan_never_passes() {
        let golden = trace();
        let mut bad = trace();
        bad.eval.auc = f64::NAN;
        assert!(compare(&golden, &bad, GoldenTolerance::default()).is_err());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = trace();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: GoldenTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
