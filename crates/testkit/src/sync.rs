//! Deterministic concurrency helpers.
//!
//! Concurrency tests that coordinate with `thread::sleep` are flaky by
//! construction: the sleep is either too short on a loaded CI box or pure
//! wasted wall-clock everywhere else. These helpers replace sleeps with
//! barriers (every thread *provably* started before any proceeds) and with
//! deadlines that are expired by value rather than by waiting.

use std::sync::{Arc, Barrier};
use std::thread;

/// Runs `threads` copies of `work` concurrently, released together by a
/// barrier so the fan-out genuinely contends instead of trickling in as
/// threads spawn. Returns each thread's result in thread-index order.
///
/// Panics propagate: if any worker panics, the join panics the caller with
/// that worker's index.
pub fn run_concurrently<T, F>(threads: usize, work: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    assert!(threads > 0, "run_concurrently: zero threads");
    let barrier = Arc::new(Barrier::new(threads));
    let work = Arc::new(work);
    let handles: Vec<_> = (0..threads)
        .map(|idx| {
            let barrier = Arc::clone(&barrier);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                barrier.wait();
                work(idx)
            })
        })
        .collect();
    handles
        .into_iter()
        .enumerate()
        .map(|(idx, h)| h.join().unwrap_or_else(|_| panic!("run_concurrently: worker {idx} panicked")))
        .collect()
}

/// A deadline that is expired the moment the request is enqueued, with no
/// sleeping: zero milliseconds have *always* already elapsed. Pairs with
/// the engine's `elapsed >= deadline` comparison.
pub const EXPIRED_DEADLINE_MS: u64 = 0;

/// A deadline far enough out that no sane test run can cross it — for
/// requests that must *not* expire.
pub const GENEROUS_DEADLINE_MS: u64 = 60_000;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_threads_run_and_results_keep_order() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let results = run_concurrently(8, move |idx| {
            c.fetch_add(1, Ordering::SeqCst);
            idx * 2
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(results, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker 0 panicked")]
    fn worker_panic_propagates() {
        run_concurrently(1, |_| panic!("boom"));
    }
}
