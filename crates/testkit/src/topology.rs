//! In-process sharded deployments for scatter-gather and degraded-answer
//! drills.
//!
//! [`ShardedDeployment::launch`] saves one artifact (with the requested
//! shard spec in its v3 manifest) and brings up `shards × replicas`
//! shard-scoped [`Engine`]s behind loopback [`Server`]s — a whole serving
//! fleet inside the test process, no subprocesses, no fixed ports. The
//! matching [`ShardTopology`] is ready to hand to a
//! `rrre_client::ShardedClient`, and per-shard / per-replica kill switches
//! let tests take infrastructure away mid-traffic and assert the degraded
//! contract instead of an outage.

use crate::fixtures::{Fixture, TempDir};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Server};
use rrre_shard::ShardTopology;
use rrre_wire::ShardSpec;
use std::sync::Arc;

/// One replica slot: the engine and its TCP front end, both `None` once
/// killed.
struct ReplicaSlot {
    engine: Option<Arc<Engine>>,
    server: Option<Server>,
    addr: String,
}

/// A live in-process fleet: `shards × replicas` shard-scoped engines over
/// one shared artifact directory.
pub struct ShardedDeployment {
    /// The artifact directory every engine loaded from (kept alive for the
    /// deployment's lifetime; reloads re-read it).
    pub dir: TempDir,
    spec: ShardSpec,
    slots: Vec<Vec<ReplicaSlot>>,
}

impl ShardedDeployment {
    /// Saves `fixture` as a `shards`-way artifact and launches `replicas`
    /// shard-scoped engine+server pairs per shard on loopback.
    pub fn launch(fixture: &Fixture, shards: u32, replicas: usize) -> Self {
        Self::launch_with(fixture, shards, replicas, EngineConfig::default())
    }

    /// [`ShardedDeployment::launch`] with explicit engine tuning (the
    /// `shard_id` field is overwritten per replica).
    pub fn launch_with(
        fixture: &Fixture,
        shards: u32,
        replicas: usize,
        base_cfg: EngineConfig,
    ) -> Self {
        assert!(shards >= 1 && replicas >= 1, "ShardedDeployment: need ≥1 shard and ≥1 replica");
        let spec = ShardSpec::with_shards(shards);
        let dir = TempDir::new(&format!("sharded-{shards}x{replicas}"));
        ModelArtifact::save_with_shards(
            dir.path(),
            &fixture.dataset,
            &fixture.corpus,
            &fixture.model,
            fixture.min_count(),
            spec,
        )
        .expect("ShardedDeployment: artifact save failed");

        let slots = (0..shards)
            .map(|shard| {
                (0..replicas)
                    .map(|_| {
                        let artifact = ModelArtifact::load(dir.path())
                            .expect("ShardedDeployment: artifact load failed");
                        let cfg = EngineConfig { shard_id: Some(shard), ..base_cfg };
                        let engine = Arc::new(Engine::new(artifact, cfg));
                        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0")
                            .expect("ShardedDeployment: server bind failed");
                        let addr = server.local_addr().to_string();
                        ReplicaSlot { engine: Some(engine), server: Some(server), addr }
                    })
                    .collect()
            })
            .collect();
        Self { dir, spec, slots }
    }

    /// The shard spec the artifact was saved with.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The deployment's topology — hand this to a `ShardedClient` (or
    /// remap the addresses through chaos proxies first).
    pub fn topology(&self) -> ShardTopology {
        ShardTopology {
            spec: self.spec,
            replicas: self
                .slots
                .iter()
                .map(|shard| shard.iter().map(|slot| slot.addr.clone()).collect())
                .collect(),
        }
    }

    /// A whole-model single-node engine over the *same* artifact — the
    /// parity oracle's reference: scatter-gather answers must match this
    /// engine bit for bit.
    pub fn whole_model_engine(&self) -> Engine {
        let artifact =
            ModelArtifact::load(self.dir.path()).expect("ShardedDeployment: artifact load failed");
        Engine::new(artifact, EngineConfig::default())
    }

    /// Takes down one replica of one shard (server stopped, engine shut
    /// down). Connections to its address are refused from now on.
    pub fn kill_replica(&mut self, shard: u32, replica: usize) {
        let slot = &mut self.slots[shard as usize][replica];
        if let Some(mut server) = slot.server.take() {
            server.stop();
        }
        if let Some(engine) = slot.engine.take() {
            engine.shutdown();
        }
    }

    /// Takes down *every* replica of one shard — the shard is now entirely
    /// unavailable, and scatter-gather answers over the survivors must
    /// come back `degraded` with this shard id listed missing.
    pub fn kill_shard(&mut self, shard: u32) {
        for replica in 0..self.slots[shard as usize].len() {
            self.kill_replica(shard, replica);
        }
    }

    /// Direct access to a live engine (e.g. to read its stats snapshot).
    /// `None` if that replica was killed.
    pub fn engine(&self, shard: u32, replica: usize) -> Option<&Arc<Engine>> {
        self.slots[shard as usize][replica].engine.as_ref()
    }
}

impl Drop for ShardedDeployment {
    fn drop(&mut self) {
        for shard in 0..self.slots.len() as u32 {
            self.kill_shard(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{trained_fixture_with, FixtureSpec};

    #[test]
    fn deployment_launches_and_kills_cleanly() {
        let fx = trained_fixture_with(FixtureSpec::micro());
        let mut dep = ShardedDeployment::launch(&fx, 2, 1);
        let topo = dep.topology();
        topo.validate().unwrap();
        assert_eq!(topo.shards(), 2);
        assert_eq!(topo.replicas[0].len(), 1);
        assert_ne!(topo.replicas[0][0], topo.replicas[1][0]);
        // Each engine is scoped to its shard.
        assert_eq!(dep.engine(1, 0).unwrap().stats().shard_id, Some(1));
        dep.kill_shard(0);
        assert!(dep.engine(0, 0).is_none());
        assert!(dep.engine(1, 0).is_some(), "killing shard 0 must not touch shard 1");
        assert!(
            std::net::TcpStream::connect(&topo.replicas[0][0]).is_err(),
            "killed replica must refuse connections"
        );
    }
}
