//! Seeded deterministic fixtures: tiny synthetic corpora and pre-trained
//! mini-models shared by every crate's tests.
//!
//! A [`FixtureSpec`] pins *all* sources of randomness — the synthetic-data
//! seed, the word2vec seed and the model seed — so a fixture built twice
//! (in one process or across processes) is bit-identical. The defaults are
//! the ones the committed golden traces and parity oracles were recorded
//! with; tests that need a different shape derive one with the builder
//! methods rather than inventing a new ad-hoc setup.

use rrre_core::{EpochStats, Rrre, RrreConfig};
use rrre_data::synth::{generate, AttackCampaign, AttackFamily, PoisonedDataset, SynthConfig};
use rrre_data::{CorpusConfig, Dataset, EncodedCorpus};
use rrre_text::word2vec::Word2VecConfig;
use std::path::{Path, PathBuf};

/// Everything that determines a fixture, in one copyable value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixtureSpec {
    /// Master seed: feeds the data generator and the model config.
    pub seed: u64,
    /// Scale factor applied to the YelpChi-shaped synthetic preset.
    pub scale: f64,
    /// Encoded document length.
    pub max_len: usize,
    /// Word-embedding dimension.
    pub embed_dim: usize,
    /// Word2vec training epochs.
    pub w2v_epochs: usize,
    /// Vocabulary min-count.
    pub min_count: u64,
    /// RRRE training epochs.
    pub epochs: usize,
    /// Training worker threads; `0` defers to the `RRRE_THREADS` environment
    /// override (the CI thread-matrix smoke), falling back to serial.
    /// Training is bit-identical at every thread count, so this never
    /// changes what a fixture *is* — only how fast it is built.
    pub threads: usize,
}

impl FixtureSpec {
    /// The standard small fixture: big enough for meaningful metrics,
    /// small enough to train in well under a second.
    pub fn small() -> Self {
        Self {
            seed: 0x5EED,
            scale: 0.04,
            max_len: 12,
            embed_dim: 8,
            w2v_epochs: 1,
            min_count: 2,
            epochs: 2,
            threads: 0,
        }
    }

    /// A barely-there fixture for tests that only need shapes to line up.
    pub fn micro() -> Self {
        Self { scale: 0.02, max_len: 8, embed_dim: 4, ..Self::small() }
    }

    /// The same spec under a different master seed (new data, new init).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same spec with a different RRRE epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// The same spec trained on an explicit number of worker threads
    /// (bypassing the `RRRE_THREADS` environment default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The synthetic-data configuration this spec pins.
    pub fn synth_config(&self) -> SynthConfig {
        SynthConfig::yelp_chi().scaled(self.scale).with_seed(self.seed)
    }

    /// The corpus configuration this spec pins.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            max_len: self.max_len,
            min_count: self.min_count,
            word2vec: Word2VecConfig { dim: self.embed_dim, epochs: self.w2v_epochs, ..Default::default() },
            ..Default::default()
        }
    }

    /// The model configuration this spec pins (tiny architecture).
    /// Precedence for the thread count: explicit [`FixtureSpec::with_threads`]
    /// beats the `RRRE_THREADS` environment variable beats serial.
    pub fn rrre_config(&self) -> RrreConfig {
        let threads = if self.threads > 0 {
            self.threads
        } else {
            RrreConfig::env_threads().unwrap_or(1)
        };
        RrreConfig { epochs: self.epochs, seed: self.seed, threads, ..RrreConfig::tiny() }
    }

    /// Generates the dataset alone.
    pub fn dataset(&self) -> Dataset {
        generate(&self.synth_config())
    }

    /// Generates the dataset and builds its encoded corpus.
    pub fn corpus(&self) -> (Dataset, EncodedCorpus) {
        let ds = self.dataset();
        let corpus = EncodedCorpus::build(&ds, &self.corpus_config());
        (ds, corpus)
    }

    /// A seeded attack campaign against this spec's dataset. The campaign
    /// seed derives from the master seed, so a campaign fixture is exactly
    /// as pinned (and as reproducible across processes) as the data it
    /// poisons; its text domain matches the synthetic preset's.
    pub fn campaign(&self, family: AttackFamily, strength: f64) -> AttackCampaign {
        AttackCampaign::new(family, strength, self.seed ^ 0xA77AC4)
            .with_domain(self.synth_config().domain)
    }
}

/// Builds the spec's corpus pipeline over a *custom* dataset — for tests
/// that plant their own review structure but should not re-invent the
/// corpus hyper-parameters.
pub fn corpus_for(ds: &Dataset, spec: &FixtureSpec) -> EncodedCorpus {
    EncodedCorpus::build(ds, &spec.corpus_config())
}

/// A fully-trained fixture: dataset, corpus, model, and the exact training
/// indices and spec that produced them.
pub struct Fixture {
    /// The spec this fixture was built from.
    pub spec: FixtureSpec,
    /// The synthetic dataset.
    pub dataset: Dataset,
    /// The encoded corpus.
    pub corpus: EncodedCorpus,
    /// The trained model (frozen-encoder mode, inference-ready).
    pub model: Rrre,
    /// The review indices the model was trained on (all of them).
    pub train: Vec<usize>,
}

impl Fixture {
    /// The vocabulary min-count the corpus was built with (needed by
    /// `ModelArtifact::save`).
    pub fn min_count(&self) -> u64 {
        self.spec.min_count
    }
}

/// A campaign-poisoned fixture: a clean [`Fixture`] plus the poisoned
/// dataset and a corpus extended with the injected documents under the
/// clean fixture's *frozen* vocabulary — the same pinned encoding the
/// robustness sweep and the streaming-ingest path use, so tests exercise
/// the deployment-shaped corpus, not a retrained one.
pub struct PoisonedFixture {
    /// The clean trained fixture the campaign attacked.
    pub clean: Fixture,
    /// The campaign's label-poisoned dataset and injection bookkeeping.
    pub poisoned: PoisonedDataset,
    /// The clean corpus with every injected text appended as a document.
    pub corpus: EncodedCorpus,
}

impl PoisonedFixture {
    /// Training indices of the poisoned fit: the clean train set plus
    /// every injected review.
    pub fn poisoned_train(&self) -> Vec<usize> {
        let mut train = self.clean.train.clone();
        train.extend_from_slice(&self.poisoned.injected);
        train
    }
}

/// Builds the standard small fixture and runs `family` at `strength`
/// against it ([`FixtureSpec::campaign`] seeds the campaign).
pub fn poisoned_fixture(family: AttackFamily, strength: f64) -> PoisonedFixture {
    poisoned_fixture_with(FixtureSpec::small(), family, strength)
}

/// Builds a campaign-poisoned fixture from an explicit spec.
pub fn poisoned_fixture_with(
    spec: FixtureSpec,
    family: AttackFamily,
    strength: f64,
) -> PoisonedFixture {
    let clean = trained_fixture_with(spec);
    let poisoned = spec.campaign(family, strength).poison(&clean.dataset);
    let mut corpus = clean.corpus.clone();
    for &i in &poisoned.injected {
        corpus.append_doc(&poisoned.dataset.reviews[i].text);
    }
    PoisonedFixture { clean, poisoned, corpus }
}

/// Trains the standard small fixture ([`FixtureSpec::small`]).
pub fn trained_fixture() -> Fixture {
    trained_fixture_with(FixtureSpec::small())
}

/// Trains a fixture from an explicit spec.
pub fn trained_fixture_with(spec: FixtureSpec) -> Fixture {
    trained_fixture_traced(spec, |_| {})
}

/// Trains a fixture while streaming per-epoch [`EpochStats`] to `hook` —
/// the entry point the golden-trace harness records through.
pub fn trained_fixture_traced(spec: FixtureSpec, mut hook: impl FnMut(EpochStats)) -> Fixture {
    let (dataset, corpus) = spec.corpus();
    let train: Vec<usize> = (0..dataset.len()).collect();
    let model = Rrre::fit_with_hook(&dataset, &corpus, &train, spec.rrre_config(), |stats, _| hook(stats));
    Fixture { spec, dataset, corpus, model, train }
}

/// A per-test scratch directory under the system temp dir, removed on drop
/// (including on panic), so failed tests do not leak artifact directories.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `…/rrre-testkit/<tag>-<pid>`, wiping any stale leftover.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir()
            .join("rrre-testkit")
            .join(format!("{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("TempDir: cannot create scratch dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_fixture() {
        let spec = FixtureSpec::micro();
        let (a_ds, a_corpus) = spec.corpus();
        let (b_ds, b_corpus) = spec.corpus();
        assert_eq!(a_ds.len(), b_ds.len());
        for (x, y) in a_ds.reviews.iter().zip(&b_ds.reviews) {
            assert_eq!((x.user, x.item, x.rating, x.timestamp), (y.user, y.item, y.rating, y.timestamp));
            assert_eq!(x.text, y.text);
        }
        assert_eq!(a_corpus.word_vectors.as_flat(), b_corpus.word_vectors.as_flat());
        for (x, y) in a_corpus.docs.iter().zip(&b_corpus.docs) {
            assert_eq!(x.ids, y.ids);
            assert_eq!(x.len, y.len);
        }
    }

    #[test]
    fn different_seed_different_model() {
        let a = trained_fixture_with(FixtureSpec::micro().with_epochs(1));
        let b = trained_fixture_with(FixtureSpec::micro().with_epochs(1).with_seed(0xD1FF));
        let r = &a.dataset.reviews[0];
        let pa = a.model.predict(&a.corpus, r.user, r.item);
        // Same pair id-space but freshly generated data + weights: the two
        // fixtures must not be secretly sharing state.
        let rb = &b.dataset.reviews[0];
        let pb = b.model.predict(&b.corpus, rb.user, rb.item);
        assert!(pa.rating != pb.rating || pa.reliability != pb.reliability);
    }

    #[test]
    fn poisoned_fixture_is_pinned_and_bookkept() {
        let spec = FixtureSpec::micro().with_epochs(1);
        let a = poisoned_fixture_with(spec, AttackFamily::Burst, 0.2);
        let b = poisoned_fixture_with(spec, AttackFamily::Burst, 0.2);
        assert!(a.poisoned.n_injected() > 0);
        assert_eq!(a.poisoned.injected, b.poisoned.injected);
        assert_eq!(a.poisoned.dataset.reviews, b.poisoned.dataset.reviews);
        // Corpus extension: one appended doc per injected review, and the
        // clean prefix is untouched.
        assert_eq!(a.corpus.docs.len(), a.clean.corpus.docs.len() + a.poisoned.n_injected());
        assert_eq!(a.poisoned_train().len(), a.clean.train.len() + a.poisoned.n_injected());
    }

    #[test]
    fn temp_dir_cleans_up() {
        let kept;
        {
            let dir = TempDir::new("cleanup");
            kept = dir.path().to_path_buf();
            std::fs::write(dir.file("x.txt"), b"x").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists(), "TempDir must remove itself on drop");
    }
}
