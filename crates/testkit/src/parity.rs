//! Differential parity oracles.
//!
//! PR 1 split prediction into three code paths that must never drift:
//! the training-side [`Rrre::predict`], the decomposed tape-free frozen
//! path (`infer_user_tower` + `infer_item_tower` + `infer_heads`) and the
//! serve engine sitting on cached towers behind the artifact round trip.
//! These oracles assert all three agree **bit-for-bit** — not within a
//! tolerance — because every path evaluates the same frozen weights in the
//! same order; any inequality is a real divergence, not float noise.

use rrre_core::Rrre;
use rrre_data::{Dataset, EncodedCorpus, ItemId, UserId};
use rrre_serve::engine::Engine;
use rrre_serve::protocol::Request;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `count` pseudo-random user/item pairs drawn deterministically from
/// `seed` over the dataset's id space. Pairs may repeat; that is fine for
/// an oracle (repeats exercise the serve cache's warm path).
pub fn deterministic_pairs(ds: &Dataset, seed: u64, count: usize) -> Vec<(UserId, ItemId)> {
    assert!(ds.n_users > 0 && ds.n_items > 0, "deterministic_pairs: empty dataset");
    let mut state = seed ^ 0xA55E_55ED_0F17_7E57;
    (0..count)
        .map(|_| {
            let u = (splitmix64(&mut state) % ds.n_users as u64) as u32;
            let i = (splitmix64(&mut state) % ds.n_items as u64) as u32;
            (UserId(u), ItemId(i))
        })
        .collect()
}

/// Asserts `predict` ≡ the decomposed frozen inference path on every pair.
///
/// The model must already expose its frozen cache (train in frozen mode or
/// call `freeze_for_inference` first).
pub fn assert_model_parity(model: &Rrre, corpus: &EncodedCorpus, pairs: &[(UserId, ItemId)]) {
    assert!(model.has_frozen_cache(), "assert_model_parity: model has no frozen cache");
    for &(user, item) in pairs {
        let full = model.predict(corpus, user, item);
        let x_u = model.infer_user_tower(user, item);
        let y_i = model.infer_item_tower(user, item);
        let decomposed = model.infer_heads(user, item, &x_u, &y_i);
        assert!(
            full == decomposed,
            "predict vs decomposed frozen inference diverged at u{}/i{}: {full:?} vs {decomposed:?}",
            user.0,
            item.0
        );
    }
}

/// Asserts the serve engine reproduces `reference.predict` bit-for-bit on
/// every pair. `reference` is the in-process model the engine's artifact
/// was saved from; going through the engine additionally exercises the
/// checkpoint → artifact → tower-cache round trip.
pub fn assert_serve_parity(
    engine: &Engine,
    reference: &Rrre,
    corpus: &EncodedCorpus,
    pairs: &[(UserId, ItemId)],
) {
    for &(user, item) in pairs {
        let expected = reference.predict(corpus, user, item);
        let resp = engine.submit(Request::predict(user.0, item.0));
        assert!(resp.ok, "engine refused u{}/i{}: {:?}", user.0, item.0, resp.error);
        let got = resp
            .prediction
            .unwrap_or_else(|| panic!("engine returned no prediction for u{}/i{}", user.0, item.0));
        assert!(
            got.rating == expected.rating && got.reliability == expected.reliability,
            "engine vs predict diverged at u{}/i{}: engine ({}, {}) vs predict ({}, {})",
            user.0,
            item.0,
            got.rating,
            got.reliability,
            expected.rating,
            expected.reliability
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::FixtureSpec;

    #[test]
    fn pairs_are_deterministic_and_in_range() {
        let ds = FixtureSpec::micro().dataset();
        let a = deterministic_pairs(&ds, 7, 32);
        let b = deterministic_pairs(&ds, 7, 32);
        assert_eq!(a, b);
        for &(u, i) in &a {
            assert!((u.0 as usize) < ds.n_users);
            assert!((i.0 as usize) < ds.n_items);
        }
        let c = deterministic_pairs(&ds, 8, 32);
        assert_ne!(a, c, "different seeds must draw different pair sequences");
    }
}
