//! # rrre-testkit
//!
//! The workspace's shared correctness layer. Every crate's tests build on
//! the same four pillars instead of re-growing ad-hoc setup per test file:
//!
//! * [`fixtures`] — seeded, deterministic fixture builders: tiny synthetic
//!   corpora and pre-trained mini-models with fixed hyper-parameters. Two
//!   calls with the same [`fixtures::FixtureSpec`] produce bit-identical
//!   datasets, corpora and models, in this process or the next one.
//! * [`golden`] — the golden-trace regression harness: training traces
//!   (per-epoch `loss`/`loss1`/`loss2`, eval metrics, final head outputs)
//!   are compared against committed JSON files under tolerance bands and
//!   regenerated with `RRRE_UPDATE_GOLDENS=1`.
//! * [`parity`] — differential oracles asserting that `Rrre::predict`,
//!   the decomposed frozen inference path and the serving engine agree
//!   bit-for-bit, including through the checkpoint → artifact → engine
//!   round trip.
//! * [`fault`] — fault injection: artifact byte corruption, WAL tail
//!   shaving (torn writes), partial protocol writes, oversized lines and
//!   mid-stream disconnects for serve robustness tests.
//! * [`sync`] — deterministic concurrency helpers (barrier-started thread
//!   fan-out, pre-expired deadlines) that replace wall-clock sleeps in
//!   concurrency tests.
//! * [`chaos`] — a deterministic, seeded TCP chaos proxy
//!   ([`chaos::ChaosProxy`]) that interposes between a client and a
//!   replica, injecting latency, resets, truncations, corruption and
//!   black holes from a reproducible schedule.
//! * [`topology`] — in-process sharded deployments
//!   ([`topology::ShardedDeployment`]): one saved artifact served by
//!   `shards × replicas` shard-scoped engines on loopback, with per-shard
//!   and per-replica kill switches for degraded-answer drills.
//! * [`replication`] — in-process replicated single-shard deployments
//!   ([`replication::ReplicatedDeployment`]): one artifact cloned into a
//!   private directory per replica, leader-shipped WAL replication
//!   between them, with kill / restart / resync / promote levers for the
//!   durable-failover oracle.
//!
//! The crate is a *dev-dependency* everywhere it is used; production crates
//! never link it.

#![warn(missing_docs)]

pub mod chaos;
pub mod fault;
pub mod fixtures;
pub mod golden;
pub mod parity;
pub mod replication;
pub mod sync;
pub mod topology;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats, Fault};
pub use fixtures::{
    corpus_for, poisoned_fixture, poisoned_fixture_with, trained_fixture, trained_fixture_with,
    Fixture, FixtureSpec, PoisonedFixture, TempDir,
};
pub use golden::{check_golden, compare, GoldenTolerance, GoldenTrace};
pub use parity::{assert_model_parity, assert_serve_parity, deterministic_pairs};
pub use replication::ReplicatedDeployment;
pub use topology::ShardedDeployment;
