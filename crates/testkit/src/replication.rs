//! In-process replicated single-shard deployments for durability drills.
//!
//! [`ReplicatedDeployment::launch`] saves one ingest-enabled artifact and
//! clones it into one directory **per replica** — unlike
//! [`crate::topology::ShardedDeployment`], which shares a directory,
//! because WAL replication is precisely about keeping *separate* disks in
//! agreement. It then boots every replica as a replicated [`Engine`]
//! behind a loopback [`Server`]: slot 0 as the epoch-1 leader shipping its
//! WAL to the others, the rest as followers.
//!
//! The deployment exposes the failure levers the replication oracle
//! drills: [`kill`](ReplicatedDeployment::kill) a replica (server down,
//! engine shut down — the WAL stays, exactly like a machine rebooting),
//! [`restart_follower`](ReplicatedDeployment::restart_follower) it on a
//! fresh port to exercise catch-up from its own WAL,
//! [`resync_follower`](ReplicatedDeployment::resync_follower) it from a
//! copy of the current leader's directory (the full-resync path a deposed
//! leader needs), and [`promote`](ReplicatedDeployment::promote) a new
//! leader under a bumped, fenced epoch. Convergence is observed through
//! each engine's `replicated_seq` / `epoch` stats gauges, and
//! [`compact_fingerprints`](ReplicatedDeployment::compact_fingerprints)
//! turns the byte-identical-artifacts invariant into a comparable value.

use crate::fixtures::{Fixture, TempDir};
use rrre_serve::{
    AckLevel, Engine, EngineConfig, IngestConfig, ModelArtifact, ReplRole, ReplicationConfig,
    Server,
};
use rrre_wire::{Request, Response};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One replica: its private artifact directory, its current address, and
/// the live engine/server pair (`None` while killed).
struct ReplSlot {
    dir: PathBuf,
    addr: String,
    engine: Option<Arc<Engine>>,
    server: Option<Server>,
}

/// A live in-process replicated shard: N engines over N private copies of
/// one artifact, leader-shipped WAL replication between them.
pub struct ReplicatedDeployment {
    /// Root scratch directory holding every replica's private artifact
    /// copy (kept alive for the deployment's lifetime).
    pub root: TempDir,
    slots: Vec<ReplSlot>,
    leader: usize,
    epoch: u64,
    ingest: IngestConfig,
    ack: AckLevel,
    quorum_timeout: Duration,
}

/// Reserves a loopback address by binding port 0 and immediately
/// releasing it. The replication config needs every replica's address
/// *before* any server starts (the leader lists its followers, every
/// replica advertises itself as a future leader hint), so ports are
/// claimed up front and servers bind them explicitly.
fn reserve_addr() -> String {
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").expect("reserve_addr: loopback bind failed");
    listener.local_addr().expect("reserve_addr: no local addr").to_string()
}

/// Copies a directory tree (the artifact payload plus `wal/`, ledger and
/// epoch files). Both deployment launch and follower resync clone a
/// quiescent directory, so a plain recursive copy is exact.
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy_tree: cannot create destination");
    for entry in std::fs::read_dir(src).expect("copy_tree: cannot read source") {
        let entry = entry.expect("copy_tree: bad dir entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            std::fs::copy(&from, &to).expect("copy_tree: file copy failed");
        }
    }
}

impl ReplicatedDeployment {
    /// Saves `fixture` once, clones it into `replicas` private artifact
    /// directories and boots the fleet: slot 0 leads at epoch 1, everyone
    /// else follows. `quorum_timeout` is deliberately short (300ms) so
    /// quorum-loss drills fail fast instead of hanging the test.
    pub fn launch(fixture: &Fixture, replicas: usize, ack: AckLevel) -> Self {
        assert!(replicas >= 1, "ReplicatedDeployment: need ≥1 replica");
        let root = TempDir::new(&format!("replicated-{replicas}"));
        let seed_dir = root.path().join("seed");
        ModelArtifact::save(
            &seed_dir,
            &fixture.dataset,
            &fixture.corpus,
            &fixture.model,
            fixture.min_count(),
        )
        .expect("ReplicatedDeployment: artifact save failed");

        let mut slots: Vec<ReplSlot> = (0..replicas)
            .map(|i| {
                let dir = root.path().join(format!("replica{i}"));
                copy_tree(&seed_dir, &dir);
                ReplSlot { dir, addr: reserve_addr(), engine: None, server: None }
            })
            .collect();

        let mut dep = Self {
            root,
            slots: Vec::new(),
            leader: 0,
            epoch: 1,
            ingest: IngestConfig::default(),
            ack,
            quorum_timeout: Duration::from_millis(300),
        };
        // Followers first: the leader probes them the moment it boots.
        let leader_addr = slots[0].addr.clone();
        let follower_addrs: Vec<String> = slots[1..].iter().map(|s| s.addr.clone()).collect();
        std::mem::swap(&mut dep.slots, &mut slots);
        for i in 1..replicas {
            dep.boot(i, ReplRole::Follower { leader: Some(leader_addr.clone()) });
        }
        dep.boot(0, ReplRole::Leader { followers: follower_addrs, epoch: 1 });
        dep
    }

    /// Opens slot `i`'s directory as a replicated engine in `role` and
    /// binds its server on the slot's reserved address.
    fn boot(&mut self, i: usize, role: ReplRole) {
        let slot = &mut self.slots[i];
        let repl = ReplicationConfig {
            role,
            ack: self.ack,
            quorum_timeout: self.quorum_timeout,
            self_addr: Some(slot.addr.clone()),
            ..ReplicationConfig::default()
        };
        let engine = Arc::new(
            Engine::open_replicated(&slot.dir, EngineConfig::default(), self.ingest.clone(), repl)
                .expect("ReplicatedDeployment: replicated open failed"),
        );
        let server = Server::start(Arc::clone(&engine), slot.addr.as_str())
            .expect("ReplicatedDeployment: server bind failed");
        slot.engine = Some(engine);
        slot.server = Some(server);
    }

    /// Number of replica slots (live or killed).
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// The slot index currently holding leadership (as this deployment
    /// last arranged it — a deposed-but-unaware engine may disagree until
    /// the new term's traffic fences it).
    pub fn leader(&self) -> usize {
        self.leader
    }

    /// The current leader term as this deployment last arranged it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replica `i`'s current address.
    pub fn addr(&self, i: usize) -> &str {
        &self.slots[i].addr
    }

    /// Whether replica `i` is currently up.
    pub fn is_live(&self, i: usize) -> bool {
        self.slots[i].engine.is_some()
    }

    /// Indices of the live replicas.
    pub fn live(&self) -> Vec<usize> {
        (0..self.slots.len()).filter(|&i| self.is_live(i)).collect()
    }

    /// Direct access to a live engine.
    pub fn engine(&self, i: usize) -> Option<&Arc<Engine>> {
        self.slots[i].engine.as_ref()
    }

    /// Submits one request straight to replica `i`'s engine (no client
    /// stack in between — the oracle wants to choose its target exactly).
    pub fn submit(&self, i: usize, req: Request) -> Response {
        self.slots[i].engine.as_ref().expect("submit: replica is killed").submit(req)
    }

    /// Takes replica `i` down: server stopped, engine shut down. Its
    /// directory — WAL, ledger, epoch file — stays, like a machine that
    /// lost power with its disk intact.
    pub fn kill(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        if let Some(mut server) = slot.server.take() {
            server.stop();
        }
        if let Some(engine) = slot.engine.take() {
            engine.shutdown();
        }
    }

    /// Restarts a killed replica as a follower of the current leader, on a
    /// *fresh* port, recovering from its own WAL — the catch-up path. The
    /// acting leader (if alive) gets a same-term peer refresh so its
    /// shippers aim at the new address.
    pub fn restart_follower(&mut self, i: usize) {
        assert!(!self.is_live(i), "restart_follower: replica {i} is still up");
        self.slots[i].addr = reserve_addr();
        let leader_addr = self.slots[self.leader].addr.clone();
        self.boot(i, ReplRole::Follower { leader: Some(leader_addr) });
        self.refresh_peers();
    }

    /// Wipes a killed replica's directory, reclones the current leader's
    /// (quiescent) directory into it and restarts it as a follower — the
    /// full-resync path a replica whose log diverged (e.g. a deposed
    /// leader holding unacked records) must take before rejoining.
    pub fn resync_follower(&mut self, i: usize) {
        assert!(!self.is_live(i), "resync_follower: replica {i} is still up");
        assert!(self.is_live(self.leader), "resync_follower: no live leader to resync from");
        let src = self.slots[self.leader].dir.clone();
        let dst = self.slots[i].dir.clone();
        std::fs::remove_dir_all(&dst).expect("resync_follower: wipe failed");
        copy_tree(&src, &dst);
        self.restart_follower(i);
    }

    /// Promotes replica `i` to lead a new, fenced term (`epoch + 1`) with
    /// every other slot as a peer. The old leader — if still running —
    /// learns of its deposal from the new term's first probe.
    pub fn promote(&mut self, i: usize) {
        assert!(self.is_live(i), "promote: replica {i} is killed");
        self.epoch += 1;
        self.leader = i;
        let peers = self.peer_addrs(i);
        let resp = self.submit(i, Request::promote(self.epoch, peers));
        assert!(resp.ok, "promote of replica {i} refused: {:?}", resp.error);
    }

    /// Re-sends the *current* term's peer set to the acting leader — the
    /// same-term `Promote` form — so its shippers pick up followers that
    /// restarted on new addresses. No-op when the leader is down.
    pub fn refresh_peers(&self) {
        if !self.is_live(self.leader) {
            return;
        }
        let peers = self.peer_addrs(self.leader);
        let resp = self.submit(self.leader, Request::promote(self.epoch, peers));
        assert!(resp.ok, "peer refresh refused: {:?}", resp.error);
    }

    fn peer_addrs(&self, leader: usize) -> Vec<String> {
        (0..self.slots.len()).filter(|&j| j != leader).map(|j| self.slots[j].addr.clone()).collect()
    }

    /// Replica `i`'s replicated-log watermark, from its stats gauges.
    pub fn replicated_seq(&self, i: usize) -> u64 {
        self.slots[i].engine.as_ref().expect("replicated_seq: replica is killed").stats().replicated_seq
    }

    /// Waits until every live replica reports the leader's watermark and
    /// the current epoch. Returns `false` on timeout.
    pub fn await_convergence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let target = self.replicated_seq(self.leader);
            let done = self.live().into_iter().all(|i| {
                let s = self.slots[i].engine.as_ref().unwrap().stats();
                s.replicated_seq == target && s.epoch == self.epoch
            });
            if done {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Compacts every live replica and returns `(slot, fingerprint)`
    /// pairs, where the fingerprint is the sorted `(file, digest)` table
    /// of the artifact payload — equal fingerprints mean byte-identical
    /// compacted artifacts. The WAL directory, compaction ledger and
    /// epoch file are deliberately *not* part of the fingerprint: they
    /// are per-replica operational state (a follower's segment boundaries
    /// lag the leader's), not the replicated artifact.
    pub fn compact_fingerprints(&self) -> Vec<(usize, Vec<(String, String)>)> {
        self.live()
            .into_iter()
            .map(|i| {
                self.slots[i]
                    .engine
                    .as_ref()
                    .unwrap()
                    .compact_now()
                    .expect("compact_fingerprints: compaction failed");
                (i, artifact_fingerprint(&self.slots[i].dir))
            })
            .collect()
    }
}

/// Digests every artifact payload file in `dir` — manifest included,
/// operational state (`wal/`, the compaction ledger, the epoch file and
/// their tmp siblings) excluded — as a sorted `(file, digest)` table.
pub fn artifact_fingerprint(dir: &Path) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("artifact_fingerprint: cannot read dir")
        .map(|e| e.expect("artifact_fingerprint: bad dir entry"))
        .filter(|e| e.path().is_file())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let operational = name.starts_with("repl_epoch")
                || name.starts_with(rrre_serve::wal::LEDGER_FILE);
            if operational {
                return None;
            }
            let bytes = std::fs::read(e.path()).expect("artifact_fingerprint: unreadable file");
            Some((name, rrre_serve::artifact::file_digest(&bytes)))
        })
        .collect();
    out.sort();
    out
}

impl Drop for ReplicatedDeployment {
    fn drop(&mut self) {
        for i in 0..self.slots.len() {
            self.kill(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{trained_fixture_with, FixtureSpec};

    #[test]
    fn replicated_deployment_converges_and_fails_over() {
        let fx = trained_fixture_with(FixtureSpec::micro());
        let mut dep = ReplicatedDeployment::launch(&fx, 3, AckLevel::Quorum);
        assert_eq!(dep.leader(), 0);
        assert_eq!(dep.epoch(), 1);

        let resp =
            dep.submit(0, Request::ingest_review(1, 0, 0, 4.0, "solid find, would return", 1));
        assert!(resp.ok, "quorum ingest refused: {:?}", resp.error);
        assert!(dep.await_convergence(Duration::from_secs(10)), "followers never caught up");
        assert_eq!(dep.replicated_seq(1), dep.replicated_seq(0));

        // A follower must redirect writes at the leader.
        let resp =
            dep.submit(1, Request::ingest_review(2, 0, 0, 4.0, "solid find, would return", 2));
        assert!(!resp.ok);
        assert_eq!(resp.kind, Some(rrre_wire::ErrorKind::NotLeader));
        assert_eq!(resp.leader.as_deref(), Some(dep.addr(0)));

        // Failover: kill the leader, promote a follower, write again.
        dep.kill(0);
        dep.promote(1);
        assert_eq!(dep.epoch(), 2);
        let resp =
            dep.submit(1, Request::ingest_review(2, 0, 0, 4.0, "solid find, would return", 2));
        assert!(resp.ok, "post-failover ingest refused: {:?}", resp.error);
        let dup = resp.ingest.expect("ingest ack carries the dto");
        assert!(!dup.duplicate, "seq 2 was never acked before the failover");
        assert!(dep.await_convergence(Duration::from_secs(10)));
    }
}
