//! The replication durability oracle.
//!
//! Three replicas at `--ack=quorum` run a seeded 10-round failure loop;
//! each round ingests a fresh batch while one of four drills takes
//! infrastructure away:
//!
//! * **leader killed mid-batch** — the most-caught-up follower is
//!   promoted under a bumped epoch and the *whole* batch is resent: every
//!   record acked before the kill must come back `duplicate: true` (zero
//!   acked loss), every unacked one must apply exactly once.
//! * **follower killed mid-batch, then killed again mid-catch-up** —
//!   quorum holds on the survivors; the follower restarts from its own
//!   WAL, catches up, and a second kill in the middle of catch-up must
//!   not duplicate anything when it recovers again.
//! * **stale leader fenced** — a follower is promoted while the old
//!   leader is still alive (a healed partition): the old leader must end
//!   up deposed, redirecting writes at the new leader, and a `Replicate`
//!   carrying the old term must be refused with `StaleEpoch`.
//! * **durable-but-unacked** — with every follower down, a quorum ingest
//!   times out (`Unavailable`: durable on the leader, no ack). The leader
//!   then dies; after failover the resent seq must apply *fresh* — an
//!   unacked record is allowed to vanish, never to double-apply.
//!
//! After every round the fleet must reconverge; at the end, every seq
//! ever acked is resent (all must dedup), and compacting every survivor
//! must yield byte-identical artifacts.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rrre_serve::AckLevel;
use rrre_testkit::{trained_fixture_with, FixtureSpec, ReplicatedDeployment};
use rrre_wire::{ErrorKind, Request, Response};
use std::time::Duration;

const CONVERGE: Duration = Duration::from_secs(20);

fn ingest_req(seq: u64) -> Request {
    // Entity 0/0 exists in any fixture; text and ts vary by seq so every
    // record has distinct bytes.
    Request::ingest_review(seq, 0, 0, 3.5, format!("drill review {seq}"), seq as i64)
}

/// Sends `seq` to the current leader, asserting a committed ack, and
/// returns whether the server saw it as a duplicate.
fn ingest_ok(dep: &ReplicatedDeployment, seq: u64) -> bool {
    let resp = dep.submit(dep.leader(), ingest_req(seq));
    assert!(resp.ok, "seq {seq} refused by the leader: {:?}", resp.error);
    resp.ingest.expect("ingest ack carries the dto").duplicate
}

/// The follower (≠ `leader`, live) with the highest replicated watermark —
/// the failover rule that can never lose a quorum-acked record.
fn most_caught_up(dep: &ReplicatedDeployment, exclude: usize) -> usize {
    dep.live()
        .into_iter()
        .filter(|&i| i != exclude)
        .max_by_key(|&i| dep.replicated_seq(i))
        .expect("no live follower to promote")
}

#[test]
fn replication_oracle_ten_seeded_rounds_lose_nothing_and_duplicate_nothing() {
    let fx = trained_fixture_with(FixtureSpec::micro());
    let mut dep = ReplicatedDeployment::launch(&fx, 3, AckLevel::Quorum);
    let mut rng = StdRng::seed_from_u64(0xD15A57E5);
    let mut next_seq = 1u64;
    let mut acked: Vec<u64> = Vec::new();

    for round in 0..10 {
        match round % 4 {
            0 => drill_leader_killed_mid_batch(&mut dep, &mut rng, &mut next_seq, &mut acked),
            1 => drill_follower_killed_mid_batch_and_mid_catchup(
                &mut dep, &mut rng, &mut next_seq, &mut acked,
            ),
            2 => drill_stale_leader_fenced(&mut dep, &mut rng, &mut next_seq, &mut acked),
            _ => drill_durable_but_unacked(&mut dep, &mut next_seq, &mut acked),
        }
        assert!(
            dep.await_convergence(CONVERGE),
            "round {round}: fleet failed to reconverge (leader={}, epoch={})",
            dep.leader(),
            dep.epoch()
        );
    }

    // Zero acked loss, fleet-wide: every seq ever acked must still be
    // known to the current leader's dedup state.
    for &seq in &acked {
        assert!(ingest_ok(&dep, seq), "acked seq {seq} was lost across the drills");
    }
    assert!(dep.await_convergence(CONVERGE));

    // Zero duplicate application, byte-for-byte: compacting every
    // survivor folds its applied records into the artifact; any replica
    // that double-applied (or dropped) a record diverges here.
    let prints = dep.compact_fingerprints();
    assert!(prints.len() >= 2, "need at least two survivors to compare");
    let (reference, reference_print) = &prints[0];
    for (i, print) in &prints[1..] {
        assert_eq!(
            print, reference_print,
            "replica {i}'s compacted artifact diverges from replica {reference}'s"
        );
    }
}

/// Drill: the leader dies partway through a quorum batch.
fn drill_leader_killed_mid_batch(
    dep: &mut ReplicatedDeployment,
    rng: &mut StdRng,
    next_seq: &mut u64,
    acked: &mut Vec<u64>,
) {
    let batch: Vec<u64> = (0..8).map(|k| *next_seq + k).collect();
    *next_seq += batch.len() as u64;
    let kill_at = rng.gen_range(2..7usize);
    let old_leader = dep.leader();
    let mut acked_this_batch: Vec<u64> = Vec::new();
    for (k, &seq) in batch.iter().enumerate() {
        if k == kill_at {
            dep.kill(old_leader);
            break;
        }
        assert!(!ingest_ok(dep, seq), "seq {seq} is brand new, must not dedup");
        acked_this_batch.push(seq);
    }
    dep.promote(most_caught_up(dep, old_leader));

    // Resend the whole batch to the new term: acked records must dedup
    // (they survived the failover), unacked ones apply exactly once.
    for &seq in &batch {
        let was_acked = acked_this_batch.contains(&seq);
        let dup = ingest_ok(dep, seq);
        assert_eq!(
            dup, was_acked,
            "seq {seq}: acked-before-kill={was_acked} but duplicate={dup} after failover"
        );
    }
    acked.extend(&batch);

    // The dead leader may hold records the new term never acked; it
    // rejoins through a full resync, not its stale log.
    dep.resync_follower(old_leader);
}

/// Drill: a follower dies mid-batch, restarts into catch-up, and dies
/// again before catch-up finishes.
fn drill_follower_killed_mid_batch_and_mid_catchup(
    dep: &mut ReplicatedDeployment,
    rng: &mut StdRng,
    next_seq: &mut u64,
    acked: &mut Vec<u64>,
) {
    let follower = most_caught_up(dep, dep.leader());
    for _ in 0..3 {
        let seq = *next_seq;
        *next_seq += 1;
        assert!(!ingest_ok(dep, seq));
        acked.push(seq);
    }
    dep.kill(follower);
    // Quorum is 2 of 3: the leader and the remaining follower carry it.
    for _ in 0..3 {
        let seq = *next_seq;
        *next_seq += 1;
        assert!(!ingest_ok(dep, seq));
        acked.push(seq);
    }
    dep.restart_follower(follower);
    // Kill it again somewhere inside catch-up (the exact point is seeded
    // jitter — every interleaving must be safe).
    std::thread::sleep(Duration::from_millis(rng.gen_range(0..40u64)));
    dep.kill(follower);
    dep.restart_follower(follower);
}

/// Drill: a healed partition leaves two replicas claiming leadership;
/// the older term must lose.
fn drill_stale_leader_fenced(
    dep: &mut ReplicatedDeployment,
    rng: &mut StdRng,
    next_seq: &mut u64,
    acked: &mut Vec<u64>,
) {
    let old_leader = dep.leader();
    let old_epoch = dep.epoch();
    let new_leader = most_caught_up(dep, old_leader);
    // Promote WITHOUT killing the old leader — the moment the partition
    // "heals", the new term's first probe must depose it.
    dep.promote(new_leader);
    let deadline = std::time::Instant::now() + CONVERGE;
    while dep.engine(old_leader).unwrap().stats().epoch < dep.epoch() {
        assert!(std::time::Instant::now() < deadline, "old leader was never fenced");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The deposed leader refuses writes and points at the new term.
    let seq = *next_seq;
    let resp: Response = dep.submit(old_leader, ingest_req(seq));
    assert!(!resp.ok, "a deposed leader must never ack a write");
    assert_eq!(resp.kind, Some(ErrorKind::NotLeader));
    assert_eq!(resp.leader.as_deref(), Some(dep.addr(new_leader)));

    // A replication frame still carrying the old term is fenced with a
    // structured StaleEpoch naming the current term.
    let stale = dep.submit(new_leader, Request::replicate(old_epoch, 0, Vec::new()));
    assert!(!stale.ok);
    assert_eq!(stale.kind, Some(ErrorKind::StaleEpoch));
    assert_eq!(stale.epoch, Some(dep.epoch()));

    // Normal traffic continues under the new term.
    let count = rng.gen_range(3..6u64);
    for _ in 0..count {
        let seq = *next_seq;
        *next_seq += 1;
        assert!(!ingest_ok(dep, seq));
        acked.push(seq);
    }
}

/// Drill: a record durable on the leader but never acked (quorum timed
/// out with every follower down) is allowed to vanish in failover — and
/// must never double-apply when the client resends it.
fn drill_durable_but_unacked(
    dep: &mut ReplicatedDeployment,
    next_seq: &mut u64,
    acked: &mut Vec<u64>,
) {
    let leader = dep.leader();
    let followers: Vec<usize> = dep.live().into_iter().filter(|&i| i != leader).collect();
    for &f in &followers {
        dep.kill(f);
    }
    let lonely_seq = *next_seq;
    *next_seq += 1;
    let resp = dep.submit(leader, ingest_req(lonely_seq));
    assert!(!resp.ok, "a quorum ack without a quorum would be a durability lie");
    assert_eq!(resp.kind, Some(ErrorKind::Unavailable), "quorum loss surfaces as Unavailable");

    // The leader dies holding the unacked record; the followers come
    // back without it and one takes over.
    dep.kill(leader);
    for &f in &followers {
        dep.restart_follower(f);
    }
    dep.promote(followers[0]);

    // The client's retry of the unacked seq applies fresh, exactly once.
    assert!(!ingest_ok(dep, lonely_seq), "an unacked seq must not dedup after failover");
    acked.push(lonely_seq);
    dep.resync_follower(leader);
}
