//! Skip-gram word2vec with negative sampling, from scratch.
//!
//! The paper pretrains the review text "as vectors" to speed up training;
//! this module provides those pretrained word embeddings. The implementation
//! is the classic SGNS of Mikolov et al. (2013): for each (center, context)
//! pair within a window, maximise `log σ(u_ctx · v_cen)` plus `k` negative
//! samples drawn from the unigram distribution raised to the ¾ power.
//! Hand-rolled SGD (no autograd) keeps pretraining fast.

use crate::vocab::{Vocab, PAD, UNK};
use rand::Rng;

/// Training configuration for [`train_word2vec`].
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Symmetric context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate, linearly decayed to 10 % over training.
    pub lr: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Subsampling threshold for frequent words (0 disables).
    pub subsample: f32,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Self { dim: 32, window: 4, negatives: 5, lr: 0.025, epochs: 3, subsample: 1e-3 }
    }
}

/// Learned word embeddings: one `dim`-vector per vocabulary id.
#[derive(Debug, Clone)]
pub struct WordVectors {
    dim: usize,
    data: Vec<f32>,
}

impl WordVectors {
    /// Reconstructs a table from a flat row-major buffer, e.g. one restored
    /// from a serving checkpoint.
    ///
    /// # Panics
    /// Panics if `flat` is not a whole number of `dim`-rows.
    pub fn from_flat(dim: usize, flat: Vec<f32>) -> Self {
        assert!(dim > 0, "WordVectors::from_flat: dim must be positive");
        assert!(
            flat.len() % dim == 0,
            "WordVectors::from_flat: {} floats is not a whole number of {}-dim rows",
            flat.len(),
            dim
        );
        Self { dim, data: flat }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors (= vocabulary size).
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The vector for word `id`.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// The full table as a flat row-major buffer (`len × dim`).
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Cosine similarity between two word ids (0 if either vector is zero).
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        crate::similarity::cosine(self.vector(a), self.vector(b))
    }

    /// The `top_n` nearest words to `id` by cosine, excluding itself and the
    /// special tokens.
    pub fn nearest(&self, id: usize, top_n: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (2..self.len())
            .filter(|&j| j != id)
            .map(|j| (j, self.cosine(id, j)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(top_n);
        scored
    }
}

/// Alias-free negative sampler over the unigram^(3/4) distribution, using a
/// precomputed cumulative table and binary search.
struct NegativeSampler {
    cumulative: Vec<f64>,
}

impl NegativeSampler {
    fn new(vocab: &Vocab) -> Self {
        let mut cumulative = Vec::with_capacity(vocab.len());
        let mut acc = 0.0f64;
        for id in 0..vocab.len() {
            // Specials never get sampled.
            let w = if id == PAD || id == UNK { 0.0 } else { (vocab.count(id) as f64).powf(0.75) };
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "NegativeSampler: empty vocabulary");
        Self { cumulative }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains skip-gram embeddings on encoded documents (`Vec` of id streams).
///
/// Returns the input-side vectors, the convention of the reference
/// implementation. Deterministic given `rng`.
pub fn train_word2vec(
    docs: &[Vec<usize>],
    vocab: &Vocab,
    cfg: &Word2VecConfig,
    rng: &mut impl Rng,
) -> WordVectors {
    let v = vocab.len();
    let d = cfg.dim;
    let bound = 0.5 / d as f32;
    let mut w_in: Vec<f32> = (0..v * d).map(|_| rng.gen_range(-bound..bound)).collect();
    let mut w_out: Vec<f32> = vec![0.0; v * d];
    let sampler = NegativeSampler::new(vocab);
    let total_tokens: u64 = vocab.total_count().max(1);

    let total_steps = (cfg.epochs * docs.iter().map(Vec::len).sum::<usize>()).max(1) as f32;
    let mut step = 0f32;
    let mut grad_buf = vec![0.0f32; d];

    for _epoch in 0..cfg.epochs {
        for doc in docs {
            for (pos, &center) in doc.iter().enumerate() {
                step += 1.0;
                if center == PAD || center == UNK {
                    continue;
                }
                // Frequent-word subsampling (Mikolov Eq. 5).
                if cfg.subsample > 0.0 {
                    let f = vocab.count(center) as f32 / total_tokens as f32;
                    let keep = ((cfg.subsample / f).sqrt() + cfg.subsample / f).min(1.0);
                    if rng.gen::<f32>() > keep {
                        continue;
                    }
                }
                let lr = cfg.lr * (1.0 - 0.9 * step / total_steps);
                let win = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(win);
                let hi = (pos + win + 1).min(doc.len());
                for (ctx_pos, &context) in doc[lo..hi].iter().enumerate().map(|(o, c)| (lo + o, c)) {
                    if ctx_pos == pos {
                        continue;
                    }
                    if context == PAD || context == UNK {
                        continue;
                    }
                    grad_buf.iter_mut().for_each(|x| *x = 0.0);
                    let cen_range = center * d..(center + 1) * d;
                    // Positive pair plus negatives; label 1 for the true context.
                    for neg in 0..=cfg.negatives {
                        let (target, label) = if neg == 0 {
                            (context, 1.0)
                        } else {
                            let s = sampler.sample(rng);
                            if s == context {
                                continue;
                            }
                            (s, 0.0)
                        };
                        let tgt_range = target * d..(target + 1) * d;
                        let dot: f32 = w_in[cen_range.clone()]
                            .iter()
                            .zip(&w_out[tgt_range.clone()])
                            .map(|(&a, &b)| a * b)
                            .sum();
                        let g = (sigmoid(dot) - label) * lr;
                        for (gb, &o) in grad_buf.iter_mut().zip(&w_out[tgt_range.clone()]) {
                            *gb += g * o;
                        }
                        // w_in updates are deferred to grad_buf, so reading it
                        // here still sees the pre-step center vector.
                        for (o, &c) in w_out[tgt_range].iter_mut().zip(&w_in[cen_range.clone()]) {
                            *o -= g * c;
                        }
                    }
                    for (i_slot, &gb) in w_in[cen_range].iter_mut().zip(&grad_buf) {
                        *i_slot -= gb;
                    }
                }
            }
        }
    }
    WordVectors { dim: d, data: w_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;
    use rand::{rngs::StdRng, SeedableRng};

    /// A toy corpus with two disjoint topics: co-occurring words must end up
    /// closer than cross-topic words.
    fn topic_corpus() -> Vec<Vec<String>> {
        let mut docs = Vec::new();
        for _ in 0..60 {
            docs.push(tokenize("pizza pasta cheese tomato pizza pasta cheese tomato"));
            docs.push(tokenize("engine wheel brake gear engine wheel brake gear"));
        }
        docs
    }

    #[test]
    fn cooccurring_words_are_closer_than_cross_topic() {
        let docs = topic_corpus();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, 1);
        let encoded: Vec<Vec<usize>> = docs.iter().map(|d| vocab.encode(d)).collect();
        let cfg = Word2VecConfig { dim: 16, epochs: 8, subsample: 0.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(17);
        let vecs = train_word2vec(&encoded, &vocab, &cfg, &mut rng);

        let same = vecs.cosine(vocab.id("pizza"), vocab.id("pasta"));
        let cross = vecs.cosine(vocab.id("pizza"), vocab.id("engine"));
        assert!(
            same > cross + 0.2,
            "same-topic cosine {same} should beat cross-topic {cross}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = topic_corpus();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, 1);
        let encoded: Vec<Vec<usize>> = docs.iter().map(|d| vocab.encode(d)).collect();
        let cfg = Word2VecConfig { dim: 8, epochs: 1, ..Default::default() };
        let a = train_word2vec(&encoded, &vocab, &cfg, &mut StdRng::seed_from_u64(3));
        let b = train_word2vec(&encoded, &vocab, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn vectors_are_finite_and_sized() {
        let docs = topic_corpus();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, 1);
        let encoded: Vec<Vec<usize>> = docs.iter().map(|d| vocab.encode(d)).collect();
        let cfg = Word2VecConfig { dim: 12, epochs: 1, ..Default::default() };
        let vecs = train_word2vec(&encoded, &vocab, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(vecs.len(), vocab.len());
        assert_eq!(vecs.dim(), 12);
        assert!(vecs.as_flat().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nearest_excludes_self_and_specials() {
        let docs = topic_corpus();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, 1);
        let encoded: Vec<Vec<usize>> = docs.iter().map(|d| vocab.encode(d)).collect();
        let vecs = train_word2vec(&encoded, &vocab, &Word2VecConfig::default(), &mut StdRng::seed_from_u64(5));
        let id = vocab.id("pizza");
        let near = vecs.nearest(id, 3);
        assert_eq!(near.len(), 3);
        assert!(near.iter().all(|&(j, _)| j != id && j > 1));
    }
}
