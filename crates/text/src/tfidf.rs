//! TF–IDF document vectors — the classic sparse text representation, used
//! by the content-similarity diagnostics and available as an alternative
//! review representation.

use crate::vocab::{Vocab, PAD, UNK};
use std::collections::HashMap;

/// A fitted TF–IDF model (inverse document frequencies per vocabulary id).
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f32>,
}

impl TfIdf {
    /// Fits IDF weights over encoded documents:
    /// `idf(w) = ln((1 + N) / (1 + df(w))) + 1` (smoothed).
    pub fn fit(docs: &[Vec<usize>], vocab: &Vocab) -> Self {
        let n = docs.len() as f32;
        let mut df = vec![0u32; vocab.len()];
        for doc in docs {
            let mut seen = vec![false; vocab.len()];
            for &id in doc {
                if id != PAD && id != UNK && !seen[id] {
                    seen[id] = true;
                    df[id] += 1;
                }
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n) / (1.0 + d as f32)).ln() + 1.0)
            .collect();
        Self { idf }
    }

    /// Vocabulary size covered.
    pub fn vocab_len(&self) -> usize {
        self.idf.len()
    }

    /// The IDF weight of a word id.
    pub fn idf(&self, id: usize) -> f32 {
        self.idf[id]
    }

    /// The L2-normalised sparse TF–IDF vector of a document, as sorted
    /// `(word_id, weight)` pairs. PAD/UNK are excluded.
    pub fn transform(&self, doc: &[usize]) -> Vec<(usize, f32)> {
        let mut counts: HashMap<usize, f32> = HashMap::new();
        for &id in doc {
            if id != PAD && id != UNK && id < self.idf.len() {
                *counts.entry(id).or_default() += 1.0;
            }
        }
        let mut entries: Vec<(usize, f32)> = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.idf[id]))
            .collect();
        // Sort before normalising: float summation must not depend on the
        // HashMap's randomised iteration order, or results drift by ULPs
        // between runs.
        entries.sort_by_key(|&(id, _)| id);
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            for e in &mut entries {
                e.1 /= norm;
            }
        }
        entries
    }

    /// Cosine similarity of two sparse TF–IDF vectors from [`TfIdf::transform`]
    /// (both already L2-normalised, so this is a sparse dot product).
    pub fn cosine(a: &[(usize, f32)], b: &[(usize, f32)]) -> f32 {
        let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f32);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn setup() -> (Vocab, Vec<Vec<usize>>) {
        let texts = [
            "pizza pizza great service",
            "terrible pizza slow service",
            "wonderful pasta great wine",
            "the the the filler filler",
        ];
        let docs: Vec<Vec<String>> = texts.iter().map(|t| tokenize(t)).collect();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, 1);
        let encoded = docs.iter().map(|d| vocab.encode(d)).collect();
        (vocab, encoded)
    }

    #[test]
    fn rare_words_get_higher_idf() {
        let (vocab, docs) = setup();
        let model = TfIdf::fit(&docs, &vocab);
        assert!(model.idf(vocab.id("pasta")) > model.idf(vocab.id("pizza")));
        assert!(model.idf(vocab.id("pizza")) > model.idf(vocab.id("service")) - 1e-6);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let (vocab, docs) = setup();
        let model = TfIdf::fit(&docs, &vocab);
        for doc in &docs {
            let v = model.transform(doc);
            let norm: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "norm {norm}");
        }
    }

    #[test]
    fn similar_documents_score_higher() {
        let (vocab, docs) = setup();
        let model = TfIdf::fit(&docs, &vocab);
        let v: Vec<_> = docs.iter().map(|d| model.transform(d)).collect();
        let pizza_pair = TfIdf::cosine(&v[0], &v[1]);
        let pizza_vs_filler = TfIdf::cosine(&v[0], &v[3]);
        assert!(pizza_pair > pizza_vs_filler);
        assert!((TfIdf::cosine(&v[0], &v[0]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_document_transforms_to_empty() {
        let (vocab, docs) = setup();
        let model = TfIdf::fit(&docs, &vocab);
        assert!(model.transform(&[]).is_empty());
        assert!(model.transform(&[crate::PAD, crate::UNK]).is_empty());
    }
}
