//! Vocabulary with frequency-based pruning and reserved special tokens.

use std::collections::HashMap;

/// Id of the padding token (always 0).
pub const PAD: usize = 0;
/// Id of the unknown-word token (always 1).
pub const UNK: usize = 1;

/// Bidirectional word ↔ id mapping. Ids `0` and `1` are reserved for
/// [`PAD`] and [`UNK`].
#[derive(Debug, Clone)]
pub struct Vocab {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Builds a vocabulary from token streams, keeping words that occur at
    /// least `min_count` times, in descending frequency order (ties broken
    /// lexicographically for determinism).
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a [String]>, min_count: u64) -> Self {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for doc in docs {
            for tok in doc {
                *freq.entry(tok.as_str()).or_default() += 1;
            }
        }
        let mut entries: Vec<(&str, u64)> = freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut vocab = Self {
            word_to_id: HashMap::with_capacity(entries.len() + 2),
            id_to_word: Vec::with_capacity(entries.len() + 2),
            counts: Vec::with_capacity(entries.len() + 2),
        };
        vocab.push("<pad>", 0);
        vocab.push("<unk>", 0);
        for (word, count) in entries {
            vocab.push(word, count);
        }
        vocab
    }

    fn push(&mut self, word: &str, count: u64) {
        let id = self.id_to_word.len();
        self.word_to_id.insert(word.to_string(), id);
        self.id_to_word.push(word.to_string());
        self.counts.push(count);
    }

    /// Vocabulary size including the two special tokens.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_word.len() <= 2
    }

    /// Id for `word`, or [`UNK`] if absent.
    pub fn id(&self, word: &str) -> usize {
        self.word_to_id.get(word).copied().unwrap_or(UNK)
    }

    /// Word for `id`.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn word(&self, id: usize) -> &str {
        &self.id_to_word[id]
    }

    /// Corpus frequency of the word with `id` (0 for the specials).
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Maps a token stream to ids, replacing unknown words by [`UNK`].
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Total corpus tokens covered by the vocabulary (sum of counts).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts.iter().map(|t| crate::tokenize(t)).collect()
    }

    #[test]
    fn specials_are_reserved() {
        let d = docs(&["a b c"]);
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocab::build(refs, 1);
        assert_eq!(v.word(PAD), "<pad>");
        assert_eq!(v.word(UNK), "<unk>");
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn min_count_prunes() {
        let d = docs(&["rare common common", "common"]);
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocab::build(refs, 2);
        assert_eq!(v.id("rare"), UNK);
        assert_ne!(v.id("common"), UNK);
        assert_eq!(v.count(v.id("common")), 3);
    }

    #[test]
    fn frequency_ordering_is_deterministic() {
        let d = docs(&["b b a a c"]);
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocab::build(refs, 1);
        // a and b tie at 2, lexicographic tiebreak puts a first.
        assert_eq!(v.word(2), "a");
        assert_eq!(v.word(3), "b");
        assert_eq!(v.word(4), "c");
    }

    #[test]
    fn encode_roundtrip_with_unknowns() {
        let d = docs(&["seen words here"]);
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocab::build(refs, 1);
        let ids = v.encode(&crate::tokenize("seen unseen"));
        assert_eq!(ids[0], v.id("seen"));
        assert_eq!(ids[1], UNK);
    }
}
