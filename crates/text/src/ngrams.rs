//! N-gram extraction over token-id sequences — phrase-level features for
//! content-based spam analysis ("must buy", "stay away" bigrams are far
//! more discriminative than their unigrams).

use std::collections::HashMap;

/// All contiguous n-grams of a token-id sequence, as fixed-size windows.
/// Returns an empty vector when the sequence is shorter than `n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ngrams(tokens: &[usize], n: usize) -> Vec<&[usize]> {
    assert!(n > 0, "ngrams: n must be positive");
    if tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).collect()
}

/// Counts n-gram frequencies across documents, returning a map from the
/// n-gram (as an owned vector) to its corpus count.
pub fn ngram_counts<'a>(docs: impl IntoIterator<Item = &'a [usize]>, n: usize) -> HashMap<Vec<usize>, usize> {
    let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
    for doc in docs {
        for gram in ngrams(doc, n) {
            *counts.entry(gram.to_vec()).or_default() += 1;
        }
    }
    counts
}

/// The `top_k` most frequent n-grams, ties broken by the n-gram's ids for
/// determinism.
pub fn top_ngrams(counts: &HashMap<Vec<usize>, usize>, top_k: usize) -> Vec<(Vec<usize>, usize)> {
    let mut entries: Vec<(Vec<usize>, usize)> = counts.iter().map(|(g, &c)| (g.clone(), c)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(top_k);
    entries
}

/// Dice coefficient between the bigram multisets of two documents — a
/// phrase-level similarity, sharper than unigram Jaccard for templated text.
pub fn bigram_dice(a: &[usize], b: &[usize]) -> f32 {
    let ga = ngram_counts([a], 2);
    let gb = ngram_counts([b], 2);
    let total: usize = ga.values().sum::<usize>() + gb.values().sum::<usize>();
    if total == 0 {
        return 0.0;
    }
    let overlap: usize = ga
        .iter()
        .map(|(g, &ca)| ca.min(gb.get(g).copied().unwrap_or(0)))
        .sum();
    2.0 * overlap as f32 / total as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngram_windows() {
        let t = [1usize, 2, 3, 4];
        assert_eq!(ngrams(&t, 2), vec![&[1, 2][..], &[2, 3], &[3, 4]]);
        assert_eq!(ngrams(&t, 4).len(), 1);
        assert!(ngrams(&t, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        let _ = ngrams(&[1, 2], 0);
    }

    #[test]
    fn counting_and_top() {
        let d1 = [1usize, 2, 1, 2];
        let d2 = [1usize, 2, 3];
        let counts = ngram_counts([&d1[..], &d2[..]], 2);
        assert_eq!(counts[&vec![1, 2]], 3);
        assert_eq!(counts[&vec![2, 1]], 1);
        let top = top_ngrams(&counts, 1);
        assert_eq!(top[0].0, vec![1, 2]);
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn dice_extremes() {
        let a = [1usize, 2, 3];
        assert!((bigram_dice(&a, &a) - 1.0).abs() < 1e-6);
        let b = [7usize, 8, 9];
        assert_eq!(bigram_dice(&a, &b), 0.0);
        assert_eq!(bigram_dice(&[1], &[1]), 0.0); // too short for bigrams
    }

    #[test]
    fn dice_is_symmetric() {
        let a = [1usize, 2, 3, 4];
        let b = [2usize, 3, 4, 5];
        assert!((bigram_dice(&a, &b) - bigram_dice(&b, &a)).abs() < 1e-6);
    }
}
