//! Whitespace-and-punctuation tokenizer.
//!
//! Reviews in this workspace are plain English-like text; tokenization
//! lower-cases, splits on anything that is not alphanumeric or an apostrophe,
//! and drops empty pieces. Deterministic and allocation-light.

/// Splits `text` into lower-cased tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Counts tokens without allocating the token vector.
pub fn token_count(text: &str) -> usize {
    let mut count = 0;
    let mut in_token = false;
    for ch in text.chars() {
        let is_word = ch.is_alphanumeric() || ch == '\'';
        if is_word && !in_token {
            count += 1;
        }
        in_token = is_word;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting_and_lowercasing() {
        assert_eq!(tokenize("Great food, GREAT service!"), vec!["great", "food", "great", "service"]);
    }

    #[test]
    fn apostrophes_kept_inside_words() {
        assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ---").is_empty());
    }

    #[test]
    fn token_count_matches_tokenize() {
        for s in ["a b c", "Hello, world!", "", "one-two three's", "x"] {
            assert_eq!(token_count(s), tokenize(s).len(), "for {s:?}");
        }
    }
}
