//! # rrre-text
//!
//! Text substrate for the RRRE reproduction: tokenizer, frequency-pruned
//! vocabulary, from-scratch skip-gram word2vec (the paper's "pretrained"
//! review vectors), fixed-length document encoding and similarity utilities.

#![warn(missing_docs)]

mod encode;
pub mod ngrams;
pub mod similarity;
mod tfidf;
mod tokenize;
mod vocab;
pub mod word2vec;

pub use encode::{encode_document, EncodedDoc};
pub use tfidf::TfIdf;
pub use tokenize::{token_count, tokenize};
pub use vocab::{Vocab, PAD, UNK};
pub use word2vec::{train_word2vec, Word2VecConfig, WordVectors};
