//! Fixed-length document encoding: tokenize → ids → pad/truncate.

use crate::vocab::{Vocab, PAD};

/// A document encoded to exactly `max_len` ids, padded with [`PAD`] at the
/// end if shorter, truncated if longer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedDoc {
    /// Word ids, exactly `max_len` of them.
    pub ids: Vec<usize>,
    /// Number of real (non-pad) tokens, at most `max_len`.
    pub len: usize,
}

impl EncodedDoc {
    /// `true` at positions holding real tokens.
    pub fn mask(&self) -> Vec<bool> {
        (0..self.ids.len()).map(|i| i < self.len).collect()
    }

    /// Whether the document had no in-vocabulary content at all.
    pub fn is_blank(&self) -> bool {
        self.len == 0
    }
}

/// Encodes raw text to a fixed-length id sequence.
///
/// A fully empty document still yields `max_len` pads with `len == 0`;
/// callers that feed sequence models should treat such documents specially
/// (the dataset layer guarantees non-empty review text).
pub fn encode_document(text: &str, vocab: &Vocab, max_len: usize) -> EncodedDoc {
    assert!(max_len > 0, "encode_document: max_len must be positive");
    let tokens = crate::tokenize(text);
    let mut ids = vocab.encode(&tokens);
    ids.truncate(max_len);
    let len = ids.len();
    ids.resize(max_len, PAD);
    EncodedDoc { ids, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocab;

    fn vocab_for(text: &str) -> Vocab {
        let doc = crate::tokenize(text);
        Vocab::build([doc.as_slice()], 1)
    }

    #[test]
    fn pads_short_documents() {
        let v = vocab_for("alpha beta");
        let e = encode_document("alpha", &v, 4);
        assert_eq!(e.len, 1);
        assert_eq!(e.ids.len(), 4);
        assert_eq!(e.ids[1..], [PAD, PAD, PAD]);
        assert_eq!(e.mask(), vec![true, false, false, false]);
    }

    #[test]
    fn truncates_long_documents() {
        let v = vocab_for("a b c d e");
        let e = encode_document("a b c d e", &v, 3);
        assert_eq!(e.len, 3);
        assert_eq!(e.ids.len(), 3);
    }

    #[test]
    fn unknown_words_become_unk_not_pad() {
        let v = vocab_for("known");
        let e = encode_document("mystery", &v, 2);
        assert_eq!(e.ids[0], crate::vocab::UNK);
        assert_eq!(e.len, 1);
    }

    #[test]
    fn empty_document_is_blank() {
        let v = vocab_for("word");
        let e = encode_document("", &v, 3);
        assert!(e.is_blank());
        assert_eq!(e.ids, vec![PAD, PAD, PAD]);
    }
}
