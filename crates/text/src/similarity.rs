//! Vector and text similarity utilities, used by the content-based fraud
//! features (templated spam text is detectably self-similar).

use std::collections::HashSet;

/// Cosine similarity of two equal-length vectors; `0.0` if either is zero.
///
/// # Panics
/// Panics on length mismatch.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch {} vs {}", a.len(), b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Jaccard similarity of two token-id sets.
pub fn jaccard(a: &[usize], b: &[usize]) -> f32 {
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    inter / union
}

/// Mean of a document's word vectors — the cheap sentence embedding used by
/// similarity features. `dim`-length zero vector for empty/blank docs.
pub fn mean_vector(ids: &[usize], len: usize, flat_table: &[f32], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if len == 0 {
        return out;
    }
    for &id in &ids[..len.min(ids.len())] {
        let row = &flat_table[id * dim..(id + 1) * dim];
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    for o in &mut out {
        *o /= len as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_extremes() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn jaccard_known_values() {
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-6);
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert!((jaccard(&[1], &[1]) - 1.0).abs() < 1e-6);
        assert_eq!(jaccard(&[1, 1, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn mean_vector_averages_only_real_tokens() {
        // table: id0 = [0,0], id1 = [2,4], id2 = [4,0]
        let table = [0.0, 0.0, 2.0, 4.0, 4.0, 0.0];
        let out = mean_vector(&[1, 2, 0, 0], 2, &table, 2);
        assert_eq!(out, vec![3.0, 2.0]);
        assert_eq!(mean_vector(&[0, 0], 0, &table, 2), vec![0.0, 0.0]);
    }
}
