//! Property-based tests of the text pipeline.

use proptest::prelude::*;
use rrre_text::{encode_document, tokenize, Vocab, PAD, UNK};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokenize_never_produces_empty_tokens(s in ".{0,200}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric() || c == '\''));
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_its_output(s in "[a-zA-Z0-9 ,.!?']{0,120}") {
        let once = tokenize(&s);
        let rejoined = once.join(" ");
        let twice = tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn vocab_roundtrips_known_words(words in prop::collection::vec("[a-z]{1,8}", 1..30)) {
        let doc: Vec<String> = words.clone();
        let vocab = Vocab::build([doc.as_slice()], 1);
        for w in &words {
            let id = vocab.id(w);
            prop_assert_ne!(id, UNK, "word {} fell out of its own vocab", w);
            prop_assert_eq!(vocab.word(id), w.as_str());
        }
    }

    #[test]
    fn encode_document_always_exact_length(s in "[a-z ]{0,200}", max_len in 1usize..40) {
        let doc = tokenize("seed words for the vocabulary");
        let vocab = Vocab::build([doc.as_slice()], 1);
        let e = encode_document(&s, &vocab, max_len);
        prop_assert_eq!(e.ids.len(), max_len);
        prop_assert!(e.len <= max_len);
        // All padding lies strictly after the real tokens.
        for (i, &id) in e.ids.iter().enumerate() {
            if i >= e.len {
                prop_assert_eq!(id, PAD);
            }
        }
        prop_assert_eq!(e.mask().iter().filter(|&&m| m).count(), e.len);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded(
        a in prop::collection::vec(-5.0f32..5.0, 4),
        b in prop::collection::vec(-5.0f32..5.0, 4),
    ) {
        use rrre_text::similarity::cosine;
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab));
    }

    #[test]
    fn jaccard_bounds_and_identity(ids in prop::collection::vec(0usize..20, 0..30)) {
        use rrre_text::similarity::jaccard;
        let j = jaccard(&ids, &ids);
        if ids.is_empty() {
            prop_assert_eq!(j, 0.0);
        } else {
            prop_assert!((j - 1.0).abs() < 1e-6);
        }
    }
}
