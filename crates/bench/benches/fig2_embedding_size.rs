//! Fig. 2 bench: RRRE training cost as the review-embedding size `k` grows
//! (the figure's hidden time dimension). `repro fig2` regenerates the
//! quality curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrre_bench::methods::rrre_config;
use rrre_bench::{DatasetRun, Scale};
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_embedding_sizes(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut group = c.benchmark_group("fig2_rrre_train_by_k");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for k in [8usize, 32] {
        let cfg = RrreConfig { k, ..rrre_config(Scale::Smoke, 0) };
        group.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |bench, cfg| {
            bench.iter(|| black_box(Rrre::fit(&run.ds, &run.corpus, &run.split.train, *cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embedding_sizes);
criterion_main!(benches);
