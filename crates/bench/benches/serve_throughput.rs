//! Serving-path throughput: what the tower caches and the micro-batching
//! queue actually buy.
//!
//! * `predict/cold` — every request pays a full UserNet+ItemNet evaluation
//!   (the pair is invalidated before each predict).
//! * `predict/warm` — the steady state: two cache lookups + the two heads.
//! * `burst/max_batch={1,32}` — the same concurrent burst against an engine
//!   that may not batch vs one that may; the batching engine amortises
//!   queue wake-ups across the batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{CorpusConfig, EncodedCorpus};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_text::word2vec::Word2VecConfig;
use std::hint::black_box;
use std::time::Duration;

const MIN_COUNT: u64 = 2;

fn build_engine(tag: &str, max_batch: usize, max_wait: Duration) -> Engine {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
    let corpus = EncodedCorpus::build(
        &ds,
        &CorpusConfig {
            max_len: 12,
            min_count: MIN_COUNT,
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        },
    );
    let train: Vec<usize> = (0..ds.len()).collect();
    let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 2, ..RrreConfig::tiny() });

    let dir = std::env::temp_dir().join(format!("rrre-serve-bench-{tag}-{}", std::process::id()));
    ModelArtifact::save(&dir, &ds, &corpus, &model, MIN_COUNT).unwrap();
    let artifact = ModelArtifact::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    Engine::new(
        artifact,
        EngineConfig { workers: 4, max_batch, max_wait, cache_shards: 8, ..EngineConfig::default() },
    )
}

/// A concurrent burst: `threads × per_thread` warm predicts racing into the
/// queue at once, returning once every response has arrived.
fn burst(engine: &Engine, threads: u32, per_thread: u32, n_users: u32, n_items: u32) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for r in 0..per_thread {
                    let resp = engine
                        .submit(Request::predict((t * 3 + r) % n_users, (t + r) % n_items));
                    assert!(resp.ok, "bench predict failed: {:?}", resp.error);
                }
            });
        }
    });
}

fn bench_cache_states(c: &mut Criterion) {
    let engine = build_engine("cache", 8, Duration::from_micros(200));
    let mut group = c.benchmark_group("serve");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    group.bench_function("predict/cold", |b| {
        b.iter(|| {
            // Evict both tower entries so the next predict recomputes them.
            engine.submit(Request::invalidate(Some(0), Some(0)));
            black_box(engine.submit(Request::predict(0, 0)))
        });
    });

    // Warm the pair once, then measure the steady state.
    engine.submit(Request::predict(0, 0));
    group.bench_function("predict/warm", |b| {
        b.iter(|| black_box(engine.submit(Request::predict(0, 0))));
    });
    group.finish();
    engine.shutdown();
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/burst");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for max_batch in [1usize, 32] {
        let engine = build_engine(
            &format!("batch{max_batch}"),
            max_batch,
            // The no-batch engine also gets no collection window.
            if max_batch == 1 { Duration::ZERO } else { Duration::from_micros(500) },
        );
        let (n_users, n_items) = {
            let m = &engine.generation().artifact.manifest;
            (m.n_users as u32, m.n_items as u32)
        };
        // Warm every pair the burst will touch so both engines measure
        // queueing, not tower evaluation.
        burst(&engine, 4, 16, n_users, n_items);
        group.bench_with_input(
            BenchmarkId::new("max_batch", max_batch),
            &max_batch,
            |b, _| b.iter(|| burst(&engine, 4, 16, n_users, n_items)),
        );
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_cache_states, bench_batch_sizes);
criterion_main!(benches);
