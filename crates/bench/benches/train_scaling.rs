//! Data-parallel training throughput: samples/sec of one training epoch at
//! 1/2/4/8 worker threads over the default bench fixture.
//!
//! Because every thread count is bit-identical (see `rrre_core::parallel`
//! and `tests/parallel_parity.rs`), this bench measures a pure throughput
//! knob: on an N-core machine the 4-thread row should reach ≥ 2× the
//! serial samples/sec (shards are coarse enough that pool overhead stays
//! under a few percent of an epoch). On a single-core box the rows simply
//! document the pool overhead — a printed samples/sec summary accompanies
//! the Criterion timings so the scaling curve is visible either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{CorpusConfig, Dataset, EncodedCorpus};
use rrre_text::word2vec::Word2VecConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EPOCHS: usize = 1;

fn fixture() -> (Dataset, EncodedCorpus, Vec<usize>) {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.08));
    let corpus = EncodedCorpus::build(
        &ds,
        &CorpusConfig {
            max_len: 12,
            min_count: 2,
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        },
    );
    let train: Vec<usize> = (0..ds.len()).collect();
    (ds, corpus, train)
}

fn train_once(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], threads: usize) -> Rrre {
    Rrre::fit(ds, corpus, train, RrreConfig { epochs: EPOCHS, threads, ..RrreConfig::tiny() })
}

fn bench_train_scaling(c: &mut Criterion) {
    let (ds, corpus, train) = fixture();
    let samples_per_run = (train.len() * EPOCHS) as f64;

    // Samples/sec summary (median of 3) alongside the Criterion rows.
    println!("train_scaling: {} training examples per epoch", train.len());
    let mut serial_rate = None;
    for threads in THREAD_COUNTS {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                black_box(train_once(&ds, &corpus, &train, threads));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let rate = samples_per_run / times[1];
        let speedup = serial_rate.map_or(1.0, |s: f64| rate / s);
        if threads == 1 {
            serial_rate = Some(rate);
        }
        println!("train_scaling: threads={threads:<2} {rate:>10.0} samples/sec ({speedup:.2}x vs serial)");
    }

    let mut group = c.benchmark_group("train_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for threads in THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(train_once(&ds, &corpus, &train, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_scaling);
criterion_main!(benches);
