//! Fig. 4 bench: RRRE training cost as the ItemNet input size `s_i` grows —
//! the paper observes roughly linear time growth because item degrees are
//! large. `repro fig4` regenerates the quality curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrre_bench::methods::rrre_config;
use rrre_bench::{DatasetRun, Scale};
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_item_input_sizes(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut group = c.benchmark_group("fig4_rrre_train_by_s_i");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for s_i in [4usize, 12, 24] {
        let cfg = RrreConfig { s_i, ..rrre_config(Scale::Smoke, 0) };
        group.bench_with_input(BenchmarkId::from_parameter(s_i), &cfg, |bench, cfg| {
            bench.iter(|| black_box(Rrre::fit(&run.ds, &run.corpus, &run.split.train, *cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_item_input_sizes);
criterion_main!(benches);
