//! Micro-benchmarks of the substrate kernels every experiment is built on:
//! dense matmul, BiLSTM review encoding, fraud-attention, the FM head,
//! belief propagation and the REV2 fixed point.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rrre_baselines::reliability::{Rev2, Rev2Config};
use rrre_bench::{DatasetRun, Scale};
use rrre_data::synth::SynthConfig;
use rrre_graph::BpNetwork;
use rrre_tensor::nn::{AttentionPool, BiLstm, FactorizationMachine};
use rrre_tensor::{init, Params};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::normal(&mut rng, 64, 64, 0.0, 1.0);
    let b = init::normal(&mut rng, 64, 64, 0.0, 1.0);
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))));
    });
}

fn bench_bilstm_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = Params::new();
    let bilstm = BiLstm::new(&mut params, &mut rng, "b", 32, 32);
    let seq = init::normal(&mut rng, 30, 32, 0.0, 1.0);
    c.bench_function("encoder/bilstm_30tok_k64", |bench| {
        bench.iter(|| black_box(bilstm.infer(&params, black_box(&seq))));
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let attn = AttentionPool::new(&mut params, &mut rng, "a", 64, 32, 16);
    let items = init::normal(&mut rng, 12, 64, 0.0, 1.0);
    let ctx = init::normal(&mut rng, 1, 32, 0.0, 1.0);
    c.bench_function("attention/pool_12x64", |bench| {
        bench.iter(|| black_box(attn.infer(&params, black_box(&items), &ctx, None)));
    });
}

fn bench_fm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut params = Params::new();
    let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 32, 8);
    let x = init::normal(&mut rng, 1, 32, 0.0, 1.0);
    c.bench_function("fm/infer_32d_8f", |bench| {
        bench.iter(|| black_box(fm.infer(&params, black_box(&x))));
    });
}

fn bench_bp(c: &mut Criterion) {
    // A 200-node chain with attractive couplings.
    let mut net = BpNetwork::new(200);
    net.clamp(0, 1);
    for i in 0..199 {
        net.add_edge(i, i + 1, [[0.8, 0.2], [0.2, 0.8]]);
    }
    c.bench_function("graph/bp_200node_chain", |bench| {
        bench.iter(|| black_box(net.run(20, 0.0, 1e-6)));
    });
}

fn bench_rev2(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    c.bench_function("graph/rev2_smoke_yelpchi", |bench| {
        bench.iter(|| black_box(Rev2::run(&run.ds, Rev2Config::default())));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_bilstm_encode, bench_attention, bench_fm, bench_bp, bench_rev2
}
criterion_main!(benches);
