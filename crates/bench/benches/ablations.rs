//! Ablation benches for the design choices of DESIGN.md §4: training cost
//! of fraud-attention vs mean pooling, biased vs plain loss, and latest vs
//! random sampling. `repro ablations` regenerates the quality comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rrre_bench::methods::rrre_config;
use rrre_bench::{DatasetRun, Scale};
use rrre_core::{Pooling, Rrre, RrreConfig, Sampling};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let base = rrre_config(Scale::Smoke, 0);
    let variants: [(&str, RrreConfig); 4] = [
        ("attention_biased", base),
        ("mean_pooling", RrreConfig { pooling: Pooling::Mean, ..base }),
        ("plain_loss", base.minus()),
        ("random_sampling", RrreConfig { sampling: Sampling::Random, ..base }),
    ];
    let mut group = c.benchmark_group("ablation_train_smoke");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for (name, cfg) in variants {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(Rrre::fit(&run.ds, &run.corpus, &run.split.train, cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
