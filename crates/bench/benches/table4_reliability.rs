//! Table IV bench: trains/runs each reliability-scoring method on the
//! smoke-scale YelpChi-shaped dataset. `repro table4` regenerates the table.

use criterion::{criterion_group, criterion_main, Criterion};
use rrre_bench::methods::{reliability_scores, ReliabilityMethod};
use rrre_bench::{DatasetRun, Scale};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_reliability_methods(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut group = c.benchmark_group("table4_reliability_smoke");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for method in ReliabilityMethod::ALL {
        group.bench_function(method.name(), |bench| {
            bench.iter(|| black_box(reliability_scores(&run, method, Scale::Smoke)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliability_methods);
criterion_main!(benches);
