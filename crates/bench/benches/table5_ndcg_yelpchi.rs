//! Table V bench: NDCG@k computation over the reliability rankings on the
//! YelpChi-shaped dataset (scores computed once; the metric itself is
//! benchmarked across the paper's k grid). `repro table5` regenerates the
//! table values.

use criterion::{criterion_group, criterion_main, Criterion};
use rrre_bench::methods::{reliability_scores, ReliabilityMethod};
use rrre_bench::ndcg::k_grid;
use rrre_bench::{DatasetRun, Scale};
use rrre_data::synth::SynthConfig;
use rrre_metrics::ndcg_at_k;
use std::hint::black_box;

fn bench_ndcg_yelpchi(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let labels = run.test_labels();
    let scores = reliability_scores(&run, ReliabilityMethod::Icwsm13, Scale::Smoke);
    let ks = k_grid(Scale::Smoke, labels.len());
    c.bench_function("table5_ndcg_grid_yelpchi", |bench| {
        bench.iter(|| {
            for &k in &ks {
                black_box(ndcg_at_k(black_box(&scores), &labels, k));
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ndcg_yelpchi
}
criterion_main!(benches);
