//! Table VI bench: the full NDCG pipeline (all four reliability methods +
//! ranking metric) on the smoke-scale CDs-shaped dataset. `repro table6`
//! regenerates the table values.

use criterion::{criterion_group, criterion_main, Criterion};
use rrre_bench::ndcg::run_ndcg;
use rrre_bench::Scale;
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_ndcg_cds(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_ndcg_cds");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("full_pipeline_smoke", |bench| {
        bench.iter(|| black_box(run_ndcg(&SynthConfig::cds(), Scale::Smoke, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench_ndcg_cds);
criterion_main!(benches);
