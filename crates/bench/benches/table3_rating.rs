//! Table III bench: trains each rating-prediction method on the smoke-scale
//! YelpChi-shaped dataset. `repro table3 --scale small` regenerates the
//! actual table; this bench tracks the training cost of every column.

use criterion::{criterion_group, criterion_main, Criterion};
use rrre_bench::methods::{rating_predictions, RatingMethod};
use rrre_bench::{DatasetRun, Scale};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_rating_methods(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut group = c.benchmark_group("table3_rating_train_smoke");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for method in RatingMethod::ALL {
        group.bench_function(method.name(), |bench| {
            bench.iter(|| black_box(rating_predictions(&run, method, Scale::Smoke)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rating_methods);
criterion_main!(benches);
