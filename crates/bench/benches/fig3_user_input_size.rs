//! Fig. 3 bench: RRRE training cost as the UserNet input size `s_u` grows —
//! the paper finds the time cost "changes a little" because user degrees
//! are tiny. `repro fig3` regenerates the quality curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrre_bench::methods::rrre_config;
use rrre_bench::{DatasetRun, Scale};
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::SynthConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_user_input_sizes(c: &mut Criterion) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut group = c.benchmark_group("fig3_rrre_train_by_s_u");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for s_u in [1usize, 5, 9] {
        let cfg = RrreConfig { s_u, ..rrre_config(Scale::Smoke, 0) };
        group.bench_with_input(BenchmarkId::from_parameter(s_u), &cfg, |bench, cfg| {
            bench.iter(|| black_box(Rrre::fit(&run.ds, &run.corpus, &run.split.train, *cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_user_input_sizes);
criterion_main!(benches);
