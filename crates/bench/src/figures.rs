//! Reproduction of the paper's Figures 2–4: hyper-parameter sweeps with
//! per-epoch learning curves and wall-clock cost.
//!
//! * Fig. 2 — review-embedding size `k ∈ {8, 16, 32, 64, 128}`;
//! * Fig. 3 — UserNet input size `s_u ∈ {1, 3, 5, 7, 9, 11, 13}` with
//!   `s_i` fixed;
//! * Fig. 4 — ItemNet input size `s_i ∈ {12, 32, 52, 72, 92, 112, 132}`
//!   (clipped to the scaled item degrees) with `s_u` fixed.
//!
//! All sweeps run on the YelpChi-shaped dataset, as in §IV-E.

use crate::context::DatasetRun;
use crate::methods::rrre_config;
use crate::report::{fmt3, TextTable};
use crate::scale::Scale;
use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::SynthConfig;
use rrre_metrics::{auc, brmse};
use std::time::Instant;

/// One sweep point: the swept value, its learning curves and cost.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept hyper-parameter value.
    pub value: usize,
    /// Test bRMSE after each epoch.
    pub brmse_curve: Vec<f64>,
    /// Test reliability AUC after each epoch.
    pub auc_curve: Vec<f64>,
    /// Total training wall-clock seconds.
    pub train_seconds: f64,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Which figure this reproduces.
    pub figure: &'static str,
    /// Name of the swept hyper-parameter.
    pub param: &'static str,
    /// The sweep points.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Serialises the sweep as CSV: one row per (value, epoch) with both
    /// metric curves — the raw data behind the paper's figure plots.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{},epoch,brmse,auc,train_seconds", self.param);
        for p in &self.points {
            for (epoch, (&b, &a)) in p.brmse_curve.iter().zip(&p.auc_curve).enumerate() {
                let _ = writeln!(out, "{},{},{:.6},{:.6},{:.3}", p.value, epoch, b, a, p.train_seconds);
            }
        }
        out
    }

    /// Writes [`Sweep::to_csv`] to a file, creating parent directories.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders the final-epoch summary table (value, bRMSE, AUC, seconds).
    pub fn summary_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("{} — influence of {} (final-epoch test metrics)", self.figure, self.param),
            &[self.param, "bRMSE", "AUC", "train_s"],
        );
        for p in &self.points {
            table.row(vec![
                p.value.to_string(),
                fmt3(p.brmse_curve.last().copied().unwrap_or(f64::NAN)),
                fmt3(p.auc_curve.last().copied().unwrap_or(f64::NAN)),
                format!("{:.2}", p.train_seconds),
            ]);
        }
        table
    }

    /// Renders the per-epoch bRMSE learning curves (one row per epoch).
    pub fn curve_table(&self) -> TextTable {
        let headers: Vec<String> = std::iter::once("epoch".to_string())
            .chain(self.points.iter().map(|p| format!("{}={}", self.param, p.value)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            format!("{} — per-epoch test bRMSE curves", self.figure),
            &header_refs,
        );
        let epochs = self.points.iter().map(|p| p.brmse_curve.len()).max().unwrap_or(0);
        for e in 0..epochs {
            let mut cells = vec![e.to_string()];
            for p in &self.points {
                cells.push(p.brmse_curve.get(e).map_or("-".into(), |&v| fmt3(v)));
            }
            table.row(cells);
        }
        table
    }
}

/// Trains one configuration with per-epoch test evaluation.
fn sweep_point(run: &DatasetRun, cfg: RrreConfig, value: usize) -> SweepPoint {
    let targets = run.test_ratings();
    let weights = run.test_reliability();
    let labels = run.test_labels();
    let mut brmse_curve = Vec::with_capacity(cfg.epochs);
    let mut auc_curve = Vec::with_capacity(cfg.epochs);
    let start = Instant::now();
    let _ = Rrre::fit_with_hook(&run.ds, &run.corpus, &run.split.train, cfg, |_, model| {
        let preds = model.predict_reviews(&run.ds, &run.corpus, &run.split.test);
        let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
        let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
        brmse_curve.push(brmse(&ratings, &targets, &weights));
        auc_curve.push(auc(&rels, &labels));
    });
    SweepPoint { value, brmse_curve, auc_curve, train_seconds: start.elapsed().as_secs_f64() }
}

/// Fig. 2: embedding-size sweep.
pub fn run_fig2(scale: Scale) -> Sweep {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let ks: &[usize] = match scale {
        Scale::Smoke => &[8, 16],
        _ => &[8, 16, 32, 64, 128],
    };
    let points = ks
        .iter()
        .map(|&k| {
            let cfg = RrreConfig { k, ..rrre_config(scale, 0) };
            sweep_point(&run, cfg, k)
        })
        .collect();
    Sweep { figure: "Fig. 2", param: "k", points }
}

/// Fig. 3: UserNet input-size sweep (`s_i` held at the paper's setting,
/// scaled to the generated item degrees).
pub fn run_fig3(scale: Scale) -> Sweep {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let sus: &[usize] = match scale {
        Scale::Smoke => &[1, 3],
        _ => &[1, 3, 5, 7, 9, 11, 13],
    };
    let points = sus
        .iter()
        .map(|&s_u| {
            let cfg = RrreConfig { s_u, ..rrre_config(scale, 0) };
            sweep_point(&run, cfg, s_u)
        })
        .collect();
    Sweep { figure: "Fig. 3", param: "s_u", points }
}

/// Fig. 4: ItemNet input-size sweep (`s_u = 11` fixed as in §IV-E2). The
/// paper's grid {12…132} is scaled by the dataset factor so the sweep stays
/// meaningful relative to the generated item degrees.
pub fn run_fig4(scale: Scale) -> Sweep {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let grid: Vec<usize> = match scale {
        Scale::Smoke => vec![4, 8],
        Scale::Small => vec![3, 8, 13, 18, 23, 28, 33],
        Scale::Full => vec![12, 32, 52, 72, 92, 112, 132],
    };
    let points = grid
        .into_iter()
        .map(|s_i| {
            let cfg = RrreConfig { s_i, ..rrre_config(scale, 0) };
            sweep_point(&run, cfg, s_i)
        })
        .collect();
    Sweep { figure: "Fig. 4", param: "s_i", points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_value_epoch() {
        let sweep = Sweep {
            figure: "Fig. X",
            param: "k",
            points: vec![SweepPoint {
                value: 8,
                brmse_curve: vec![1.2, 1.0],
                auc_curve: vec![0.6, 0.7],
                train_seconds: 0.5,
            }],
        };
        let csv = sweep.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("k,epoch,brmse,auc,train_seconds"));
        assert!(csv.contains("8,1,1.000000,0.700000,0.500"));
    }

    #[test]
    fn sweep_tables_render() {
        let sweep = Sweep {
            figure: "Fig. X",
            param: "k",
            points: vec![
                SweepPoint { value: 8, brmse_curve: vec![1.2, 1.0], auc_curve: vec![0.6, 0.7], train_seconds: 0.5 },
                SweepPoint { value: 16, brmse_curve: vec![1.1, 0.9], auc_curve: vec![0.65, 0.75], train_seconds: 0.9 },
            ],
        };
        let summary = sweep.summary_table().render();
        assert!(summary.contains("0.900") && summary.contains("0.750"));
        let curves = sweep.curve_table().render();
        assert!(curves.contains("k=8") && curves.contains("k=16"));
    }
}
