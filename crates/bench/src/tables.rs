//! Reproduction of the paper's Tables II, III and IV.

use crate::context::DatasetRun;
use crate::methods::{rating_predictions, reliability_scores, RatingMethod, ReliabilityMethod};
use crate::report::{fmt3, TextTable};
use crate::scale::Scale;
use rrre_data::synth::SynthConfig;
use rrre_data::{dataset_stats, DatasetStats};
use rrre_metrics::stats::mean_std;
use rrre_metrics::{auc, average_precision, brmse};

/// Table II: statistics of the generated datasets.
pub fn run_table2(scale: Scale) -> (Vec<DatasetStats>, TextTable) {
    let mut table = TextTable::new(
        "Table II — statistics of the (synthetic) datasets",
        &["dataset", "#reviews", "%fake", "#items", "#users", "med|W^u|", "med|W^i|"],
    );
    let mut stats = Vec::new();
    for preset in SynthConfig::all_presets() {
        let run = DatasetRun::prepare(&preset, scale, 0);
        let s = dataset_stats(&run.ds);
        table.row(vec![
            s.name.clone(),
            s.n_reviews.to_string(),
            format!("{:.2}%", s.fake_pct),
            s.n_items.to_string(),
            s.n_users.to_string(),
            s.median_user_degree.to_string(),
            s.median_item_degree.to_string(),
        ]);
        stats.push(s);
    }
    (stats, table)
}

/// One dataset row of Table III: per-method bRMSE trials.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// `(method, mean bRMSE)` in [`RatingMethod::ALL`] order.
    pub brmse: Vec<(RatingMethod, f64)>,
    /// Raw per-trial values, `trials[method][trial]`.
    pub trials: Vec<Vec<f64>>,
}

/// Table III: bRMSE of every rating method on every dataset, averaged over
/// `repeats` trials (the paper reports the mean of five). With more than one
/// trial the rendered cells carry `±` sample standard deviations.
pub fn run_table3(scale: Scale, repeats: usize) -> (Vec<Table3Row>, TextTable) {
    assert!(repeats >= 1, "run_table3: need at least one repeat");
    let mut rows = Vec::new();
    for preset in SynthConfig::all_presets() {
        let mut trials = vec![Vec::with_capacity(repeats); RatingMethod::ALL.len()];
        for trial in 0..repeats as u64 {
            let run = DatasetRun::prepare(&preset, scale, trial);
            let targets = run.test_ratings();
            let weights = run.test_reliability();
            for (mi, method) in RatingMethod::ALL.into_iter().enumerate() {
                let preds = rating_predictions(&run, method, scale);
                trials[mi].push(brmse(&preds, &targets, &weights));
            }
        }
        rows.push(Table3Row {
            dataset: preset.name.clone(),
            brmse: RatingMethod::ALL
                .into_iter()
                .zip(trials.iter().map(|t| mean_std(t).mean))
                .collect(),
            trials,
        });
    }
    let mut headers: Vec<&str> = vec!["dataset"];
    headers.extend(RatingMethod::ALL.iter().map(|m| m.name()));
    let mut table = TextTable::new(
        format!("Table III — bRMSE of rating prediction (mean of {repeats} trials)"),
        &headers,
    );
    for row in &rows {
        let mut cells = vec![row.dataset.clone()];
        for t in &row.trials {
            let ms = mean_std(t);
            if repeats > 1 {
                cells.push(format!("{} ±{:.3}", fmt3(ms.mean), ms.std));
            } else {
                cells.push(fmt3(ms.mean));
            }
        }
        table.row(cells);
    }
    (rows, table)
}

/// One dataset's Table IV metrics for one method.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// Method evaluated.
    pub method: ReliabilityMethod,
    /// ROC-AUC on benign-vs-fake.
    pub auc: f64,
    /// Average precision of ranking benign reviews first (main-table
    /// convention; see EXPERIMENTS.md on the paper's mixed conventions).
    pub ap_benign: f64,
    /// Average precision of ranking fake reviews first (spam-detection
    /// convention).
    pub ap_fake: f64,
}

/// One dataset row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Per-method metrics in [`ReliabilityMethod::ALL`] order.
    pub cells: Vec<Table4Cell>,
}

/// Table IV: AUC and average precision of every reliability method on every
/// dataset.
pub fn run_table4(scale: Scale, repeats: usize) -> (Vec<Table4Row>, TextTable) {
    assert!(repeats >= 1, "run_table4: need at least one repeat");
    let mut rows = Vec::new();
    for preset in SynthConfig::all_presets() {
        let n_methods = ReliabilityMethod::ALL.len();
        let (mut auc_s, mut apb_s, mut apf_s) = (vec![0.0; n_methods], vec![0.0; n_methods], vec![0.0; n_methods]);
        for trial in 0..repeats as u64 {
            let run = DatasetRun::prepare(&preset, scale, trial);
            let labels = run.test_labels();
            let fake_labels: Vec<bool> = labels.iter().map(|&b| !b).collect();
            for (mi, method) in ReliabilityMethod::ALL.into_iter().enumerate() {
                let scores = reliability_scores(&run, method, scale);
                auc_s[mi] += auc(&scores, &labels);
                apb_s[mi] += average_precision(&scores, &labels);
                let inverted: Vec<f32> = scores.iter().map(|&s| -s).collect();
                apf_s[mi] += average_precision(&inverted, &fake_labels);
            }
        }
        let r = repeats as f64;
        rows.push(Table4Row {
            dataset: preset.name.clone(),
            cells: ReliabilityMethod::ALL
                .into_iter()
                .enumerate()
                .map(|(mi, method)| Table4Cell {
                    method,
                    auc: auc_s[mi] / r,
                    ap_benign: apb_s[mi] / r,
                    ap_fake: apf_s[mi] / r,
                })
                .collect(),
        });
    }
    let mut table = TextTable::new(
        format!("Table IV — reliability score prediction (mean of {repeats} trials)"),
        &["dataset", "method", "AUC", "AP(benign)", "AP(fake)"],
    );
    for row in &rows {
        for c in &row.cells {
            table.row(vec![
                row.dataset.clone(),
                c.method.name().to_string(),
                fmt3(c.auc),
                fmt3(c.ap_benign),
                fmt3(c.ap_fake),
            ]);
        }
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_all_presets() {
        let (stats, table) = run_table2(Scale::Smoke);
        assert_eq!(stats.len(), 5);
        assert_eq!(table.len(), 5);
        let rendered = table.render();
        assert!(rendered.contains("YelpChi-sim") && rendered.contains("CDs-sim"));
    }
}
