//! Uniform method runners: train one method on a prepared [`DatasetRun`]
//! and return its test-set predictions. This is the single place where the
//! per-scale hyper-parameters of every compared method live.

use crate::context::DatasetRun;
use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrre_baselines::rating::{DeepConn, DeepConnConfig, Der, DerConfig, Narre, NarreConfig, Pmf, PmfConfig};
use rrre_baselines::reliability::{Icwsm13, Rev2, Rev2Config, SpEagle, SpEagleConfig};
use rrre_core::{Rrre, RrreConfig};

/// Rating-prediction methods of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatingMethod {
    /// The full RRRE model.
    Rrre,
    /// Probabilistic matrix factorisation.
    Pmf,
    /// DeepCoNN.
    DeepConn,
    /// NARRE.
    Narre,
    /// DER.
    Der,
    /// RRRE⁻ (plain-MSE ablation).
    RrreMinus,
}

impl RatingMethod {
    /// All methods in the paper's Table III column order.
    pub const ALL: [RatingMethod; 6] = [
        RatingMethod::Rrre,
        RatingMethod::Pmf,
        RatingMethod::DeepConn,
        RatingMethod::Narre,
        RatingMethod::Der,
        RatingMethod::RrreMinus,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            RatingMethod::Rrre => "RRRE",
            RatingMethod::Pmf => "PMF",
            RatingMethod::DeepConn => "DeepCoNN",
            RatingMethod::Narre => "NARRE",
            RatingMethod::Der => "DER",
            RatingMethod::RrreMinus => "RRRE-",
        }
    }
}

/// Reliability-scoring methods of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityMethod {
    /// Behavioural-feature classifier.
    Icwsm13,
    /// SpEagle+ belief propagation.
    SpEaglePlus,
    /// REV2 fixed-point iterations.
    Rev2,
    /// The full RRRE model's reliability head.
    Rrre,
}

impl ReliabilityMethod {
    /// All methods in the paper's Table IV row order.
    pub const ALL: [ReliabilityMethod; 4] = [
        ReliabilityMethod::Icwsm13,
        ReliabilityMethod::SpEaglePlus,
        ReliabilityMethod::Rev2,
        ReliabilityMethod::Rrre,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ReliabilityMethod::Icwsm13 => "ICWSM13",
            ReliabilityMethod::SpEaglePlus => "SpEagle+",
            ReliabilityMethod::Rev2 => "REV2",
            ReliabilityMethod::Rrre => "RRRE",
        }
    }
}

/// RRRE configuration at a scale (the paper's chosen hyper-parameters,
/// with budgets reduced at smaller scales).
pub fn rrre_config(scale: Scale, trial: u64) -> RrreConfig {
    let base = match scale {
        Scale::Smoke => RrreConfig { epochs: 3, ..RrreConfig::tiny() },
        Scale::Small => RrreConfig { epochs: 20, k: 32, id_dim: 16, attn_dim: 16, ..Default::default() },
        Scale::Full => RrreConfig { epochs: scale.epochs(), ..Default::default() },
    };
    RrreConfig { seed: base.seed ^ trial, ..base }
}

fn deepconn_config(scale: Scale, trial: u64) -> DeepConnConfig {
    let base = match scale {
        Scale::Smoke => DeepConnConfig { epochs: 2, doc_tokens: 24, filters: 8, latent: 8, ..Default::default() },
        Scale::Small => DeepConnConfig { epochs: 5, doc_tokens: 48, ..Default::default() },
        Scale::Full => DeepConnConfig { epochs: 8, ..Default::default() },
    };
    DeepConnConfig { seed: base.seed ^ trial, ..base }
}

fn narre_config(scale: Scale, trial: u64) -> NarreConfig {
    let base = match scale {
        Scale::Smoke => NarreConfig { epochs: 3, s_u: 4, s_i: 6, id_dim: 8, attn_dim: 8, ..Default::default() },
        Scale::Small => NarreConfig { epochs: 10, l2: 5e-3, ..Default::default() },
        Scale::Full => NarreConfig { epochs: scale.epochs(), ..Default::default() },
    };
    NarreConfig { seed: base.seed ^ trial, ..base }
}

fn der_config(scale: Scale, trial: u64) -> DerConfig {
    let base = match scale {
        Scale::Smoke => DerConfig { epochs: 3, s_u: 4, s_i: 6, hidden: 8, ..Default::default() },
        Scale::Small => DerConfig { epochs: 10, l2: 5e-3, ..Default::default() },
        Scale::Full => DerConfig { epochs: scale.epochs(), ..Default::default() },
    };
    DerConfig { seed: base.seed ^ trial, ..base }
}

/// Trains a rating method and returns its predicted ratings on the test
/// split.
pub fn rating_predictions(run: &DatasetRun, method: RatingMethod, scale: Scale) -> Vec<f32> {
    let DatasetRun { ds, corpus, split, trial } = run;
    match method {
        RatingMethod::Rrre => {
            let model = Rrre::fit(ds, corpus, &split.train, rrre_config(scale, *trial));
            model.predict_reviews(ds, corpus, &split.test).iter().map(|p| p.rating).collect()
        }
        RatingMethod::RrreMinus => {
            let model = Rrre::fit(ds, corpus, &split.train, rrre_config(scale, *trial).minus());
            model.predict_reviews(ds, corpus, &split.test).iter().map(|p| p.rating).collect()
        }
        RatingMethod::Pmf => {
            let mut rng = StdRng::seed_from_u64(0x9F ^ trial);
            let model = Pmf::fit(ds, &split.train, PmfConfig::default(), &mut rng);
            model.predict_reviews(ds, &split.test)
        }
        RatingMethod::DeepConn => {
            let model = DeepConn::fit(ds, corpus, &split.train, deepconn_config(scale, *trial));
            model.predict_reviews(ds, corpus, &split.test)
        }
        RatingMethod::Narre => {
            let model = Narre::fit(ds, corpus, &split.train, narre_config(scale, *trial));
            model.predict_reviews(ds, &split.test)
        }
        RatingMethod::Der => {
            let model = Der::fit(ds, corpus, &split.train, der_config(scale, *trial));
            model.predict_reviews(ds, &split.test)
        }
    }
}

/// Trains/runs a reliability method and returns its scores on the test
/// split (probability-like, higher = more likely benign).
pub fn reliability_scores(run: &DatasetRun, method: ReliabilityMethod, scale: Scale) -> Vec<f32> {
    let DatasetRun { ds, corpus, split, trial } = run;
    match method {
        ReliabilityMethod::Icwsm13 => {
            let model = Icwsm13::fit(ds, corpus, &split.train);
            model.score(ds, corpus, &split.test)
        }
        ReliabilityMethod::SpEaglePlus => {
            let model = SpEagle::run(ds, corpus, &split.train, SpEagleConfig::default());
            model.score(&split.test)
        }
        ReliabilityMethod::Rev2 => {
            let model = Rev2::run(ds, Rev2Config::default());
            model.score(&split.test)
        }
        ReliabilityMethod::Rrre => {
            let model = Rrre::fit(ds, corpus, &split.train, rrre_config(scale, *trial));
            model.predict_reviews(ds, corpus, &split.test).iter().map(|p| p.reliability).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::SynthConfig;

    #[test]
    fn every_rating_method_produces_test_predictions() {
        let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
        for method in RatingMethod::ALL {
            let preds = rating_predictions(&run, method, Scale::Smoke);
            assert_eq!(preds.len(), run.split.test.len(), "{}", method.name());
            assert!(preds.iter().all(|p| (1.0..=5.0).contains(p)), "{}", method.name());
        }
    }

    #[test]
    fn every_reliability_method_produces_scores() {
        let run = DatasetRun::prepare(&SynthConfig::cds(), Scale::Smoke, 0);
        for method in ReliabilityMethod::ALL {
            let scores = reliability_scores(&run, method, Scale::Smoke);
            assert_eq!(scores.len(), run.split.test.len(), "{}", method.name());
            assert!(scores.iter().all(|s| s.is_finite()), "{}", method.name());
        }
    }
}
