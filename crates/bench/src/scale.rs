//! Experiment scales.
//!
//! Every experiment runs at one of three scales so the same harness serves
//! smoke tests / Criterion benches (`Smoke`), the default `repro` CLI
//! (`Small`) and a patient full run (`Full`). The scale controls the
//! synthetic dataset size multiplier and the training budgets.

use std::str::FromStr;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: seconds per experiment; used by benches and CI smoke tests.
    Smoke,
    /// Default for `repro`: minutes for the whole suite.
    Small,
    /// The preset sizes of DESIGN.md §1, unscaled.
    Full,
}

impl Scale {
    /// Dataset size multiplier applied to the preset counts.
    pub fn dataset_factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.04,
            Scale::Small => 0.25,
            Scale::Full => 1.0,
        }
    }

    /// Word-embedding dimension for the corpus pipeline.
    pub fn word_dim(self) -> usize {
        match self {
            Scale::Smoke => 16,
            Scale::Small | Scale::Full => 32,
        }
    }

    /// Word2vec pretraining epochs.
    pub fn word2vec_epochs(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Small => 3,
            Scale::Full => 4,
        }
    }

    /// Training epochs for the neural rating models.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Small => 12,
            Scale::Full => 20,
        }
    }

    /// Default number of repeated trials for the mean-of-trials tables
    /// (the paper uses five).
    pub fn default_repeats(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Small => 3,
            Scale::Full => 5,
        }
    }
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Ok(Scale::Smoke),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (expected smoke|small|full)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing() {
        assert_eq!("smoke".parse::<Scale>().unwrap(), Scale::Smoke);
        assert_eq!("FULL".parse::<Scale>().unwrap(), Scale::Full);
        assert!("big".parse::<Scale>().is_err());
    }

    #[test]
    fn factors_are_ordered() {
        assert!(Scale::Smoke.dataset_factor() < Scale::Small.dataset_factor());
        assert!(Scale::Small.dataset_factor() < Scale::Full.dataset_factor());
        assert!(Scale::Smoke.epochs() < Scale::Full.epochs());
    }
}
