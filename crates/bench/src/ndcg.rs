//! Reproduction of the paper's Tables V and VI: NDCG@k of the reliability
//! ranking on the YelpChi-shaped and CDs-shaped datasets, k ∈ {100…1000}
//! (scaled with the dataset so the ranks stay meaningful at smaller scales).

use crate::context::DatasetRun;
use crate::methods::{reliability_scores, ReliabilityMethod};
use crate::report::{fmt3, TextTable};
use crate::scale::Scale;
use rrre_data::synth::SynthConfig;
use rrre_metrics::ndcg_at_k;

/// NDCG@k results: one row per k, one column per method.
#[derive(Debug, Clone)]
pub struct NdcgResult {
    /// Dataset name.
    pub dataset: String,
    /// The evaluated k values.
    pub ks: Vec<usize>,
    /// `values[method][k_idx]` in [`ReliabilityMethod::ALL`] order.
    pub values: Vec<Vec<f64>>,
}

/// The paper's k grid (100..=1000 step 100), shrunk proportionally at
/// smaller scales and clipped to the test-set size.
pub fn k_grid(scale: Scale, test_len: usize) -> Vec<usize> {
    let factor = scale.dataset_factor();
    (1..=10)
        .map(|i| ((i * 100) as f64 * factor).round().max(1.0) as usize)
        .filter(|&k| k <= test_len)
        .collect()
}

/// Runs one NDCG table (Table V on the YelpChi preset, Table VI on CDs).
pub fn run_ndcg(preset: &SynthConfig, scale: Scale, repeats: usize) -> (NdcgResult, TextTable) {
    assert!(repeats >= 1, "run_ndcg: need at least one repeat");
    let mut ks: Vec<usize> = Vec::new();
    let mut sums: Vec<Vec<f64>> = Vec::new();
    for trial in 0..repeats as u64 {
        let run = DatasetRun::prepare(preset, scale, trial);
        let labels = run.test_labels();
        if trial == 0 {
            ks = k_grid(scale, labels.len());
            sums = vec![vec![0.0; ks.len()]; ReliabilityMethod::ALL.len()];
        }
        for (mi, method) in ReliabilityMethod::ALL.into_iter().enumerate() {
            let scores = reliability_scores(&run, method, scale);
            for (ki, &k) in ks.iter().enumerate() {
                sums[mi][ki] += ndcg_at_k(&scores, &labels, k.min(labels.len()));
            }
        }
    }
    let values: Vec<Vec<f64>> = sums
        .into_iter()
        .map(|col| col.into_iter().map(|v| v / repeats as f64).collect())
        .collect();
    let result = NdcgResult { dataset: preset.name.clone(), ks: ks.clone(), values };

    let mut headers: Vec<&str> = vec!["k"];
    headers.extend(ReliabilityMethod::ALL.iter().map(|m| m.name()));
    let mut table = TextTable::new(
        format!("NDCG@k of compared methods on {} (mean of {repeats} trials)", preset.name),
        &headers,
    );
    for (ki, &k) in result.ks.iter().enumerate() {
        let mut cells = vec![k.to_string()];
        cells.extend(result.values.iter().map(|col| fmt3(col[ki])));
        table.row(cells);
    }
    (result, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_scales_and_clips() {
        let ks = k_grid(Scale::Full, 650);
        assert_eq!(ks, vec![100, 200, 300, 400, 500, 600]);
        let ks = k_grid(Scale::Smoke, 10_000);
        assert_eq!(ks.len(), 10);
        assert_eq!(ks[0], 4);
    }
}
