//! # rrre-bench
//!
//! Experiment harness reproducing every table and figure of the RRRE paper
//! on the synthetic datasets, plus the ablations of DESIGN.md §4. The
//! `repro` binary drives it; Criterion benches exercise smoke-scale slices
//! of each experiment and the substrate kernels.

#![warn(missing_docs)]

pub mod ablations;
pub mod case_study;
pub mod context;
pub mod figures;
pub mod methods;
pub mod ndcg;
pub mod report;
pub mod scale;
pub mod significance;
pub mod tables;

pub use context::DatasetRun;
pub use scale::Scale;
