//! Plain-text table rendering and result persistence for the `repro` CLI.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "TextTable::row: {} cells for {} columns", cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a metric with three decimals (the paper's precision).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Appends a rendered block to a results file, creating directories as
/// needed.
pub fn append_result(path: impl AsRef<Path>, block: &str) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let mut existing = fs::read_to_string(&path).unwrap_or_default();
    existing.push_str(block);
    existing.push('\n');
    fs::write(path, existing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.000".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 2.5   |"));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.96549), "0.965");
        assert_eq!(fmt3(1.0), "1.000");
    }
}
