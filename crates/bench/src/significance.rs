//! Paired significance testing of the headline comparison (RRRE vs each
//! baseline and vs RRRE⁻) over repeated trials on shared splits — the
//! statistical backing for Table III's "RRRE is better" claims.

use crate::context::DatasetRun;
use crate::methods::{rating_predictions, RatingMethod};
use crate::report::{fmt3, TextTable};
use crate::scale::Scale;
use rrre_data::synth::SynthConfig;
use rrre_metrics::brmse;
use rrre_metrics::stats::paired_t_test;

/// Per-baseline significance outcome against RRRE.
#[derive(Debug, Clone)]
pub struct SignificanceRow {
    /// The baseline compared against RRRE.
    pub baseline: RatingMethod,
    /// Mean bRMSE difference (RRRE − baseline); negative favours RRRE.
    pub mean_diff: f64,
    /// The t statistic.
    pub t: f64,
    /// Two-sided significance at the 5 % level.
    pub significant: bool,
}

/// Runs `repeats` paired trials of every rating method on one preset and
/// t-tests each baseline against RRRE.
///
/// # Panics
/// Panics if `repeats < 2` (a t-test needs at least two pairs).
pub fn run_significance(preset: &SynthConfig, scale: Scale, repeats: usize) -> (Vec<SignificanceRow>, TextTable) {
    assert!(repeats >= 2, "run_significance: need at least 2 repeats for a paired test");
    let mut per_method: Vec<Vec<f64>> = vec![Vec::with_capacity(repeats); RatingMethod::ALL.len()];
    for trial in 0..repeats as u64 {
        let run = DatasetRun::prepare(preset, scale, trial);
        let targets = run.test_ratings();
        let weights = run.test_reliability();
        for (mi, method) in RatingMethod::ALL.into_iter().enumerate() {
            let preds = rating_predictions(&run, method, scale);
            per_method[mi].push(brmse(&preds, &targets, &weights));
        }
    }
    let rrre_idx = RatingMethod::ALL.iter().position(|&m| m == RatingMethod::Rrre).expect("RRRE in list");
    let rrre = per_method[rrre_idx].clone();

    let mut rows = Vec::new();
    let mut table = TextTable::new(
        format!("Paired t-test vs RRRE on {} ({} trials, bRMSE)", preset.name, repeats),
        &["baseline", "mean diff (RRRE-baseline)", "t", "significant@5%"],
    );
    for (mi, method) in RatingMethod::ALL.into_iter().enumerate() {
        if method == RatingMethod::Rrre {
            continue;
        }
        let t = paired_t_test(&rrre, &per_method[mi]).expect("repeats >= 2");
        rows.push(SignificanceRow {
            baseline: method,
            mean_diff: t.mean_diff,
            t: t.t,
            significant: t.significant_at_5pct,
        });
        table.row(vec![
            method.name().to_string(),
            fmt3(t.mean_diff),
            format!("{:.2}", t.t),
            if t.significant_at_5pct { "yes".into() } else { "no".into() },
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_trial() {
        let _ = run_significance(&SynthConfig::yelp_chi(), Scale::Smoke, 1);
    }
}
