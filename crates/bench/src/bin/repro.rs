//! `repro` — regenerates every table and figure of the RRRE paper.
//!
//! ```text
//! repro [--scale smoke|small|full] [--repeats N] [--out results.txt] <target>...
//! targets: table2 table3 table4 table5 table6 fig2 fig3 fig4 case-study
//!          ablations significance all
//! ```
//!
//! Results print to stdout and append to the `--out` file (default
//! `results/experiments.txt`).

use rrre_bench::ablations;
use rrre_bench::case_study::run_case_study;
use rrre_bench::figures::{run_fig2, run_fig3, run_fig4};
use rrre_bench::ndcg::run_ndcg;
use rrre_bench::report::append_result;
use rrre_bench::scale::Scale;
use rrre_bench::significance::run_significance;
use rrre_bench::tables::{run_table2, run_table3, run_table4};
use rrre_data::synth::SynthConfig;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    scale: Scale,
    repeats: Option<usize>,
    out: String,
    targets: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Small,
        repeats: None,
        out: "results/experiments.txt".to_string(),
        targets: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse()?;
            }
            "--repeats" => {
                let v = args.next().ok_or("--repeats needs a value")?;
                opts.repeats = Some(v.parse::<usize>().map_err(|e| e.to_string())?);
            }
            "--out" => {
                opts.out = args.next().ok_or("--out needs a value")?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            target => opts.targets.push(target.to_string()),
        }
    }
    if opts.targets.is_empty() {
        opts.targets.push("all".to_string());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: repro [--scale smoke|small|full] [--repeats N] [--out FILE] <target>...\n\
         targets: table2 table3 table4 table5 table6 fig2 fig3 fig4 case-study ablations significance all"
    );
}

fn emit(out: &str, block: &str) {
    println!("{block}");
    if let Err(e) = append_result(out, block) {
        eprintln!("warning: could not write {out}: {e}");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let scale = opts.scale;
    let repeats = opts.repeats.unwrap_or_else(|| scale.default_repeats());
    let all = opts.targets.iter().any(|t| t == "all");
    let wants = |t: &str| all || opts.targets.iter().any(|x| x == t);
    let started = Instant::now();

    emit(&opts.out, &format!("# RRRE reproduction run — scale {scale:?}, {repeats} repeat(s)\n"));

    if wants("table2") {
        let (_, table) = run_table2(scale);
        emit(&opts.out, &table.render());
    }
    if wants("table3") {
        let t0 = Instant::now();
        let (_, table) = run_table3(scale, repeats);
        emit(&opts.out, &format!("{}(took {:.1}s)\n", table.render(), t0.elapsed().as_secs_f64()));
    }
    if wants("table4") {
        let t0 = Instant::now();
        let (_, table) = run_table4(scale, repeats);
        emit(&opts.out, &format!("{}(took {:.1}s)\n", table.render(), t0.elapsed().as_secs_f64()));
    }
    if wants("table5") {
        let (_, table) = run_ndcg(&SynthConfig::yelp_chi(), scale, repeats);
        emit(&opts.out, &format!("## Table V\n{}", table.render()));
    }
    if wants("table6") {
        let (_, table) = run_ndcg(&SynthConfig::cds(), scale, repeats);
        emit(&opts.out, &format!("## Table VI\n{}", table.render()));
    }
    let csv_dir = std::path::Path::new(&opts.out).parent().map(std::path::Path::to_path_buf);
    let save_csv = |sweep: &rrre_bench::figures::Sweep, name: &str| {
        if let Some(dir) = &csv_dir {
            let path = dir.join(name);
            if let Err(e) = sweep.save_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    };
    if wants("fig2") {
        let sweep = run_fig2(scale);
        emit(&opts.out, &sweep.summary_table().render());
        emit(&opts.out, &sweep.curve_table().render());
        save_csv(&sweep, "fig2_embedding_size.csv");
    }
    if wants("fig3") {
        let sweep = run_fig3(scale);
        emit(&opts.out, &sweep.summary_table().render());
        save_csv(&sweep, "fig3_user_input_size.csv");
    }
    if wants("fig4") {
        let sweep = run_fig4(scale);
        emit(&opts.out, &sweep.summary_table().render());
        save_csv(&sweep, "fig4_item_input_size.csv");
    }
    if wants("case-study") {
        let cs = run_case_study(scale);
        emit(&opts.out, &cs.recommendations.render());
        emit(&opts.out, &cs.explanations.render());
    }
    if wants("significance") {
        let reps = repeats.max(3);
        let (_, t) = run_significance(&SynthConfig::yelp_chi(), scale, reps);
        emit(&opts.out, &t.render());
    }
    if wants("ablations") {
        let (_, t) = ablations::ablation_biased_loss(scale);
        emit(&opts.out, &t.render());
        let (_, t) = ablations::ablation_attention(scale);
        emit(&opts.out, &t.render());
        let (_, t) = ablations::ablation_lambda(scale);
        emit(&opts.out, &t.render());
        let (_, t) = ablations::ablation_sampling(scale);
        emit(&opts.out, &t.render());
        let (_, t) = ablations::ablation_semi_supervised(scale);
        emit(&opts.out, &t.render());
        let (_, t) = ablations::ablation_encoder(scale);
        emit(&opts.out, &t.render());
    }

    emit(&opts.out, &format!("(total wall-clock {:.1}s)\n", started.elapsed().as_secs_f64()));
    ExitCode::SUCCESS
}
