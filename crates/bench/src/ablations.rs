//! Ablation studies for the design choices called out in DESIGN.md §4:
//! biased loss, fraud-attention, joint-loss weight λ, encoder mode and the
//! time-based sampling strategy.

use crate::context::DatasetRun;
use crate::methods::rrre_config;
use crate::report::{fmt3, TextTable};
use crate::scale::Scale;
use rrre_core::{EncoderMode, Pooling, Rrre, RrreConfig, Sampling};
use rrre_data::synth::SynthConfig;
use rrre_metrics::{auc, brmse};

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Human-readable variant label.
    pub label: String,
    /// Test bRMSE.
    pub brmse: f64,
    /// Test reliability AUC.
    pub auc: f64,
}

/// Trains `cfg` on the prepared run and evaluates both tasks.
pub fn evaluate_variant(run: &DatasetRun, cfg: RrreConfig, label: impl Into<String>) -> AblationPoint {
    let model = Rrre::fit(&run.ds, &run.corpus, &run.split.train, cfg);
    let preds = model.predict_reviews(&run.ds, &run.corpus, &run.split.test);
    let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
    let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
    AblationPoint {
        label: label.into(),
        brmse: brmse(&ratings, &run.test_ratings(), &run.test_reliability()),
        auc: auc(&rels, &run.test_labels()),
    }
}

fn render(title: &str, points: &[AblationPoint]) -> TextTable {
    let mut table = TextTable::new(title, &["variant", "bRMSE", "AUC"]);
    for p in points {
        table.row(vec![p.label.clone(), fmt3(p.brmse), fmt3(p.auc)]);
    }
    table
}

/// Biased (Eq. 14) vs plain (Eq. 13) rating loss — RRRE vs RRRE⁻.
pub fn ablation_biased_loss(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let base = rrre_config(scale, 0);
    let points = vec![
        evaluate_variant(&run, base, "biased loss (RRRE, Eq. 14)"),
        evaluate_variant(&run, base.minus(), "plain MSE (RRRE-, Eq. 13)"),
    ];
    (points.clone(), render("Ablation — biased rating loss", &points))
}

/// Fraud-attention vs mean pooling.
pub fn ablation_attention(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let base = rrre_config(scale, 0);
    let points = vec![
        evaluate_variant(&run, base, "fraud-attention (Eq. 5-7)"),
        evaluate_variant(&run, RrreConfig { pooling: Pooling::Mean, ..base }, "mean pooling"),
    ];
    (points.clone(), render("Ablation — review pooling", &points))
}

/// λ sweep of the joint loss (Eq. 15).
pub fn ablation_lambda(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let base = rrre_config(scale, 0);
    let points: Vec<AblationPoint> = [0.0f32, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|lambda| {
            evaluate_variant(&run, RrreConfig { lambda, ..base }, format!("lambda={lambda:.2}"))
        })
        .collect();
    (points.clone(), render("Ablation — joint-loss weight lambda", &points))
}

/// Time-based (latest) vs random input-review sampling.
pub fn ablation_sampling(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let base = rrre_config(scale, 0);
    let points = vec![
        evaluate_variant(&run, base, "time-based (latest m)"),
        evaluate_variant(&run, RrreConfig { sampling: Sampling::Random, ..base }, "random m-subset"),
    ];
    (points.clone(), render("Ablation — input-review sampling", &points))
}

/// Semi-supervised label budget (paper §V future work): how gracefully both
/// tasks degrade as reliability labels are withheld.
pub fn ablation_semi_supervised(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let base = rrre_config(scale, 0);
    let points: Vec<AblationPoint> = [1.0f32, 0.5, 0.25, 0.1]
        .into_iter()
        .map(|labeled_fraction| {
            evaluate_variant(
                &run,
                RrreConfig { labeled_fraction, ..base },
                format!("{:.0}% labels", labeled_fraction * 100.0),
            )
        })
        .collect();
    (points.clone(), render("Ablation — semi-supervised label budget", &points))
}

/// Frozen vs end-to-end encoder (run at reduced size — the end-to-end path
/// is orders of magnitude slower).
pub fn ablation_encoder(scale: Scale) -> (Vec<AblationPoint>, TextTable) {
    // Always shrink to smoke-size data: end-to-end backprop through the
    // BiLSTM on bigger data would dominate the whole suite's runtime.
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
    let mut base = rrre_config(Scale::Smoke, 0);
    base.epochs = base.epochs.min(3);
    let _ = scale;
    let points = vec![
        evaluate_variant(&run, base, "frozen encoder"),
        evaluate_variant(
            &run,
            RrreConfig { encoder: EncoderMode::EndToEnd, ..base },
            "end-to-end encoder",
        ),
    ];
    (points.clone(), render("Ablation — encoder mode (smoke-size data)", &points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes() {
        let points = vec![
            AblationPoint { label: "a".into(), brmse: 1.0, auc: 0.8 },
            AblationPoint { label: "b".into(), brmse: 1.1, auc: 0.7 },
        ];
        let t = render("t", &points);
        assert_eq!(t.len(), 2);
    }
}
