//! Reproduction of the paper's §IV-F case study (Tables VII and VIII):
//! recommend an item to one user with rating + reliability scores, then
//! surface the reliable explanation reviews for the recommended item,
//! filtering the low-reliability one.

use crate::context::DatasetRun;
use crate::methods::rrre_config;
use crate::report::TextTable;
use crate::scale::Scale;
use rrre_core::{explain, recommend, Rrre};
use rrre_data::synth::SynthConfig;
use rrre_data::UserId;

/// The rendered case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The showcased user.
    pub user: UserId,
    /// Table VII: top candidates with predicted scores.
    pub recommendations: TextTable,
    /// Table VIII: explanation reviews of the chosen item.
    pub explanations: TextTable,
}

fn truncate_text(text: &str, max: usize) -> String {
    if text.len() <= max {
        text.to_string()
    } else {
        let mut cut = max;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &text[..cut])
    }
}

/// Runs the case study on the YelpChi-shaped dataset: trains RRRE on all
/// reviews, picks an active benign user, produces Table VII (top-3
/// candidates, re-ranked by reliability) and Table VIII (top-2 explanation
/// reviews for the winning item).
pub fn run_case_study(scale: Scale) -> CaseStudy {
    let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), scale, 0);
    let model = Rrre::fit(&run.ds, &run.corpus, &run.split.train, rrre_config(scale, 0));

    // Pick the most active user whose reviews are all benign, mirroring the
    // paper's showcased customer.
    let index = run.ds.index();
    let user = (0..run.ds.n_users)
        .map(|u| UserId(u as u32))
        .filter(|&u| {
            index
                .user_reviews(u)
                .iter()
                .all(|&ri| run.ds.reviews[ri].label.is_benign())
        })
        .max_by_key(|&u| index.user_degree(u))
        .unwrap_or(UserId(0));

    let recs = recommend(&model, &run.ds, &run.corpus, user, 3);
    let mut rec_table = TextTable::new(
        format!("Table VII — recommendation candidates for {}", run.ds.user_name(user)),
        &["item", "predicted rating", "predicted reliability"],
    );
    for r in &recs {
        rec_table.row(vec![
            r.item_name.clone(),
            format!("{:.3}", r.rating),
            format!("{:.3}", r.reliability),
        ]);
    }

    // The recommended item is the reliability-top candidate.
    let chosen = recs.first().expect("at least one recommendation");
    let exps = explain(&model, &run.ds, &run.corpus, chosen.item, 2);
    let mut exp_table = TextTable::new(
        format!("Table VIII — reliable explanations for '{}'", chosen.item_name),
        &["author", "text", "pred rating (real)", "pred reliability (real)", "filtered"],
    );
    for e in &exps {
        let review = &run.ds.reviews[e.review_idx];
        exp_table.row(vec![
            e.user_name.clone(),
            truncate_text(&e.text, 60),
            format!("{:.3} ({})", e.rating, review.rating),
            format!("{:.3} ({})", e.reliability, review.label.as_f32()),
            if e.filtered { "yes".into() } else { "no".into() },
        ]);
    }

    CaseStudy { user, recommendations: rec_table, explanations: exp_table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_is_char_safe() {
        assert_eq!(truncate_text("short", 10), "short");
        let t = truncate_text("aaaaaaaaaaaa", 4);
        assert_eq!(t, "aaaa…");
        // Multi-byte boundary must not panic.
        let t = truncate_text("ééééé", 3);
        assert!(t.ends_with('…'));
    }
}
