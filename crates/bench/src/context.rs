//! Per-dataset experiment context: generated data, encoded corpus and the
//! paper's 70/30 split, built once per (preset, trial) and shared by every
//! method under comparison.

use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{train_test_split, CorpusConfig, Dataset, EncodedCorpus, Split};
use rrre_text::word2vec::Word2VecConfig;

/// One prepared dataset trial.
pub struct DatasetRun {
    /// The generated dataset.
    pub ds: Dataset,
    /// The encoded corpus (vocab, word vectors, documents).
    pub corpus: EncodedCorpus,
    /// 70 % train / 30 % test split.
    pub split: Split,
    /// The trial index this run belongs to (seeds derive from it).
    pub trial: u64,
}

impl DatasetRun {
    /// Generates and prepares one trial of a preset at a scale.
    ///
    /// The trial index perturbs the generator, split and word2vec seeds so
    /// repeated trials are independent draws, as in the paper's
    /// mean-of-five protocol.
    pub fn prepare(preset: &SynthConfig, scale: Scale, trial: u64) -> Self {
        let cfg = preset
            .clone()
            .scaled(scale.dataset_factor())
            .with_seed(preset.seed.wrapping_add(trial.wrapping_mul(0x9E37_79B9)));
        let ds = generate(&cfg);
        let corpus_cfg = CorpusConfig {
            max_len: 30,
            min_count: 2,
            word2vec: Word2VecConfig {
                dim: scale.word_dim(),
                epochs: scale.word2vec_epochs(),
                ..Default::default()
            },
            seed: 0x7E47 ^ trial,
        };
        let corpus = EncodedCorpus::build(&ds, &corpus_cfg);
        let mut rng = StdRng::seed_from_u64(0x5917 ^ trial);
        let split = train_test_split(&ds, 0.3, &mut rng);
        Self { ds, corpus, split, trial }
    }

    /// Ground-truth ratings of the test reviews.
    pub fn test_ratings(&self) -> Vec<f32> {
        self.split.test.iter().map(|&i| self.ds.reviews[i].rating).collect()
    }

    /// Reliability ground truth (`1.0` benign / `0.0` fake) of the test
    /// reviews.
    pub fn test_reliability(&self) -> Vec<f32> {
        self.split.test.iter().map(|&i| self.ds.reviews[i].label.as_f32()).collect()
    }

    /// Benign/fake boolean labels of the test reviews.
    pub fn test_labels(&self) -> Vec<bool> {
        self.split.test.iter().map(|&i| self.ds.reviews[i].label.is_benign()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepares_consistent_context() {
        let run = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
        assert_eq!(run.corpus.docs.len(), run.ds.len());
        assert_eq!(run.split.train.len() + run.split.test.len(), run.ds.len());
        assert_eq!(run.test_ratings().len(), run.split.test.len());
        assert_eq!(run.test_labels().len(), run.split.test.len());
    }

    #[test]
    fn trials_differ() {
        let a = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 0);
        let b = DatasetRun::prepare(&SynthConfig::yelp_chi(), Scale::Smoke, 1);
        assert!(
            a.ds.reviews.iter().zip(&b.ds.reviews).any(|(x, y)| x.text != y.text)
                || a.ds.len() != b.ds.len()
        );
    }
}
