//! # rrre
//!
//! Facade crate of the RRRE reproduction — *Reliable Recommendation with
//! Review-level Explanations* (ICDE 2021) — re-exporting the workspace's
//! public API:
//!
//! * [`core`] — the RRRE model, training and the
//!   recommendation-with-reliable-explanations procedure;
//! * [`data`] — labelled review datasets, synthetic presets,
//!   splits, statistics and the shared text pipeline;
//! * [`baselines`] — PMF, DeepCoNN, NARRE, DER, ICWSM13,
//!   SpEagle+ and REV2;
//! * [`metrics`] — bRMSE, AUC, AP, NDCG@k;
//! * [`tensor`], [`text`], [`graph`] —
//!   the from-scratch substrates.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![warn(missing_docs)]

pub use rrre_baselines as baselines;
pub use rrre_core as core;
pub use rrre_data as data;
pub use rrre_graph as graph;
pub use rrre_metrics as metrics;
pub use rrre_tensor as tensor;
pub use rrre_text as text;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use rrre_core::{explain, recommend, EncoderMode, LossVariant, Prediction, Rrre, RrreConfig};
    pub use rrre_data::synth::{generate, SynthConfig};
    pub use rrre_data::{train_test_split, CorpusConfig, Dataset, EncodedCorpus, ItemId, Label, UserId};
    pub use rrre_metrics::{auc, average_precision, brmse, ndcg_at_k, rmse};
}
