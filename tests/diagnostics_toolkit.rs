//! Integration of the diagnostic toolkit around the core pipeline: graph
//! structure analysis, probability calibration, ROC/PR curves, TF–IDF
//! similarity and the pipeline report — the pieces an operator of this
//! system would run alongside the model.

use rand::{rngs::StdRng, SeedableRng};
use rrre::core::{pipeline_report, Rrre, RrreConfig};
use rrre::graph::{connected_components, core_numbers, density, ReviewGraph};
use rrre::metrics::calibration::{brier_score, expected_calibration_error};
use rrre::metrics::{auc, auc_from_curve, pr_curve, roc_curve};
use rrre::prelude::*;
use rrre::text::word2vec::Word2VecConfig;
use rrre::text::TfIdf;

fn setup() -> (Dataset, EncodedCorpus, Vec<usize>, Vec<usize>) {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.08));
    let corpus = EncodedCorpus::build(
        &ds,
        &CorpusConfig {
            max_len: 20,
            word2vec: Word2VecConfig { dim: 16, epochs: 2, ..Default::default() },
            ..Default::default()
        },
    );
    let split = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(7));
    (ds, corpus, split.train, split.test)
}

#[test]
fn graph_analysis_reflects_yelp_shape() {
    let (ds, _, train, _) = setup();
    let g = ReviewGraph::from_dataset(&ds, &train);
    // Yelp shape: few high-degree items glue nearly everything into one
    // giant component.
    let (labels, _) = connected_components(&g);
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let giant = *sizes.values().max().unwrap();
    let connected_nodes = labels.len();
    assert!(
        giant * 2 > connected_nodes / 2,
        "giant component {giant} of {connected_nodes} too small for Yelp shape"
    );
    assert!(density(&g) > 0.0);
    // Items carry the high core numbers; users sit in shallow cores.
    let cores = core_numbers(&g);
    let max_user_core = cores[..ds.n_users].iter().max().copied().unwrap_or(0);
    let max_item_core = cores[ds.n_users..].iter().max().copied().unwrap_or(0);
    assert!(max_item_core >= max_user_core);
}

#[test]
fn reliability_scores_are_usable_probabilities() {
    let (ds, corpus, train, test) = setup();
    let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 8, k: 16, ..RrreConfig::tiny() });
    let scores: Vec<f32> = model
        .predict_reviews(&ds, &corpus, &test)
        .iter()
        .map(|p| p.reliability)
        .collect();
    let labels: Vec<bool> = test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();

    // Curve AUC must agree with rank AUC.
    let curve = roc_curve(&scores, &labels);
    assert!((auc_from_curve(&curve) - auc(&scores, &labels)).abs() < 1e-6);
    // PR curve ends at full recall.
    let pr = pr_curve(&scores, &labels);
    assert!((pr.last().unwrap().recall - 1.0).abs() < 1e-9);
    // Scores beat the chance Brier level for this base rate and are not
    // wildly mis-calibrated.
    let base_rate = labels.iter().filter(|&&l| l).count() as f32 / labels.len() as f32;
    let chance_brier = (base_rate * (1.0 - base_rate)) as f64;
    assert!(brier_score(&scores, &labels) < chance_brier + 0.05);
    assert!(expected_calibration_error(&scores, &labels, 10) < 0.5);
}

#[test]
fn tfidf_separates_spam_vocabulary() {
    let (ds, corpus, _, _) = setup();
    let docs: Vec<Vec<usize>> = corpus.docs.iter().map(|d| d.ids[..d.len].to_vec()).collect();
    let tfidf = TfIdf::fit(&docs, &corpus.vocab);
    let vectors: Vec<Vec<(usize, f32)>> = docs.iter().map(|d| tfidf.transform(d)).collect();

    // Mean fake–fake similarity should exceed fake–benign: fakes share the
    // hype lexicon even without verbatim templates.
    let fakes: Vec<usize> = (0..ds.len()).filter(|&i| !ds.reviews[i].label.is_benign()).take(25).collect();
    let benign: Vec<usize> = (0..ds.len()).filter(|&i| ds.reviews[i].label.is_benign()).take(25).collect();
    let mean_sim = |a: &[usize], b: &[usize]| {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for &x in a {
            for &y in b {
                if x != y {
                    total += TfIdf::cosine(&vectors[x], &vectors[y]);
                    count += 1;
                }
            }
        }
        total / count.max(1) as f32
    };
    let ff = mean_sim(&fakes, &fakes);
    let fb = mean_sim(&fakes, &benign);
    assert!(ff > fb, "fake-fake tfidf sim {ff} should exceed fake-benign {fb}");
}

#[test]
fn pipeline_report_over_sampled_users() {
    let (ds, corpus, train, _) = setup();
    let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 5, k: 16, ..RrreConfig::tiny() });
    let users: Vec<UserId> = (0..15.min(ds.n_users)).map(|u| UserId(u as u32)).collect();
    let report = pipeline_report(&model, &ds, &corpus, &users, 3);
    assert_eq!(report.n_users, users.len());
    assert!(report.catalog_coverage > 0.0);
    // The pipeline exists to keep fakes out of explanations: the exposure
    // rate must stay below the dataset's fake base rate.
    assert!(
        report.fake_explanation_rate <= ds.fake_fraction() + 0.1,
        "fake explanation rate {} vs base rate {}",
        report.fake_explanation_rate,
        ds.fake_fraction()
    );
}
