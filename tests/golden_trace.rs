//! Golden-trace regression gate (tier 1): the standard fixture's training
//! run — loss curve, eval metrics and final head outputs — must reproduce
//! the committed `tests/goldens/train_trace.json` within tight tolerance
//! bands. Any change to the data generator, corpus pipeline, initialiser,
//! optimiser or heads shows up here as a named out-of-band value.
//!
//! Intended changes: `RRRE_UPDATE_GOLDENS=1 cargo test -q` rewrites the
//! file; commit the diff.

use rrre_testkit::golden::{capture, check_golden, compare, GoldenTolerance, GoldenTrace};
use rrre_testkit::FixtureSpec;
use std::path::PathBuf;

const HEAD_PROBES: usize = 8;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/train_trace.json")
}

#[test]
fn training_trace_matches_committed_golden() {
    let (trace, fixture) = capture(FixtureSpec::small(), HEAD_PROBES);
    assert_eq!(trace.epochs.len(), fixture.spec.epochs, "one record per epoch");
    assert_eq!(trace.heads.len(), HEAD_PROBES);
    check_golden(golden_path(), &trace, GoldenTolerance::default());
}

/// The committed golden was recorded serially; the data-parallel path must
/// replay it inside the very same tolerance bands — no regeneration, no
/// widened tolerances. Deliberately reads the committed file directly (not
/// through `check_golden`) so this test can never rewrite it.
#[test]
fn committed_golden_replays_bit_identically_under_four_threads() {
    let (trace, _) = capture(FixtureSpec::small().with_threads(4), HEAD_PROBES);
    let raw = std::fs::read_to_string(golden_path())
        .expect("golden file must be committed (regenerate with RRRE_UPDATE_GOLDENS=1)");
    let golden: GoldenTrace = serde_json::from_str(&raw).unwrap();
    if let Err(errors) = compare(&golden, &trace, GoldenTolerance::default()) {
        panic!(
            "threads=4 replay leaves the committed golden's bands ({} violation(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        );
    }
    // Stronger than the bands: the parallel capture carries the *bits* of a
    // serial capture of the same spec.
    let (serial, _) = capture(FixtureSpec::small().with_threads(1), HEAD_PROBES);
    assert_eq!(trace, serial, "threads=4 capture must be bit-identical to serial");
}

#[test]
fn capture_is_bit_deterministic_within_a_process() {
    let spec = FixtureSpec::small().with_epochs(1);
    let (a, _) = capture(spec, 4);
    let (b, _) = capture(spec, 4);
    assert_eq!(a, b, "two captures of the same spec must be bit-identical");
}

#[test]
fn harness_rejects_one_milli_perturbations_of_the_committed_golden() {
    let raw = std::fs::read_to_string(golden_path())
        .expect("golden file must be committed (regenerate with RRRE_UPDATE_GOLDENS=1)");
    let golden: GoldenTrace = serde_json::from_str(&raw).unwrap();
    let tol = GoldenTolerance::default();

    for sign in [1.0f64, -1.0] {
        let mut bad = golden.clone();
        bad.epochs[0].loss += sign * 1e-3;
        assert!(compare(&golden, &bad, tol).is_err(), "±1e-3 on loss must fail");

        let mut bad = golden.clone();
        bad.epochs.last_mut().unwrap().loss2 += sign * 1e-3;
        assert!(compare(&golden, &bad, tol).is_err(), "±1e-3 on loss2 must fail");

        let mut bad = golden.clone();
        bad.eval.auc += sign * 1e-3;
        assert!(compare(&golden, &bad, tol).is_err(), "±1e-3 on AUC must fail");

        let mut bad = golden.clone();
        bad.heads[0].reliability += sign * 1e-3;
        assert!(compare(&golden, &bad, tol).is_err(), "±1e-3 on a head output must fail");
    }

    // And the unperturbed golden trivially agrees with itself.
    assert!(compare(&golden, &golden, tol).is_ok());
}
