//! The differential parity oracle (tier 1): `Rrre::predict`, the
//! decomposed tape-free frozen inference path, and the serve engine behind
//! the checkpoint → artifact → tower-cache round trip must agree
//! **bit-for-bit**, across three independently-seeded models — the trained
//! model and its serving deployment are the same function, not two
//! implementations that happen to be close.

use proptest::prelude::*;
use rrre_serve::{Engine, EngineConfig, ModelArtifact};
use rrre_testkit::parity::{assert_model_parity, assert_serve_parity, deterministic_pairs};
use rrre_testkit::{trained_fixture_with, Fixture, FixtureSpec, TempDir};
use std::sync::OnceLock;
use std::time::Duration;

/// Three distinct master seeds ⇒ three distinct datasets, corpora and
/// weight initialisations.
const SEEDS: [u64; 3] = [0x5EED, 0xA11CE, 0x0B0E];

struct Harness {
    fixture: Fixture,
    engine: Engine,
}

/// One trained fixture + serving engine per seed, built once and shared by
/// every test in this binary (training is the expensive part).
fn harnesses() -> &'static [Harness] {
    static CELL: OnceLock<Vec<Harness>> = OnceLock::new();
    CELL.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&seed| {
                let fixture = trained_fixture_with(FixtureSpec::small().with_seed(seed));
                let dir = TempDir::new(&format!("parity-{seed:x}"));
                ModelArtifact::save(dir.path(), &fixture.dataset, &fixture.corpus, &fixture.model, fixture.min_count())
                    .unwrap();
                let artifact = ModelArtifact::load(dir.path()).unwrap();
                let engine = Engine::new(
                    artifact,
                    EngineConfig { workers: 2, max_batch: 8, max_wait: Duration::from_micros(500), cache_shards: 4, ..EngineConfig::default() },
                );
                Harness { fixture, engine }
            })
            .collect()
    })
}

#[test]
fn predict_equals_decomposed_frozen_inference_on_every_seed() {
    for (h, &seed) in harnesses().iter().zip(&SEEDS) {
        let pairs = deterministic_pairs(&h.fixture.dataset, seed, 64);
        assert_model_parity(&h.fixture.model, &h.fixture.corpus, &pairs);
    }
}

#[test]
fn engine_reproduces_predict_through_the_artifact_round_trip_on_every_seed() {
    for (h, &seed) in harnesses().iter().zip(&SEEDS) {
        let pairs = deterministic_pairs(&h.fixture.dataset, seed.wrapping_add(1), 64);
        assert_serve_parity(&h.engine, &h.fixture.model, &h.fixture.corpus, &pairs);
    }
}

#[test]
fn checkpoint_reload_is_the_same_function() {
    let h = &harnesses()[0];
    let fx = &h.fixture;
    let dir = TempDir::new("parity-checkpoint");
    let path = dir.file("weights.rrrp");
    fx.model.save_weights(&path).unwrap();

    let reloaded =
        rrre::core::Rrre::from_checkpoint(&fx.dataset, &fx.corpus, fx.spec.rrre_config(), &path).unwrap();
    assert!(reloaded.has_frozen_cache(), "frozen-mode reload must rebuild the inference cache");

    let pairs = deterministic_pairs(&fx.dataset, 0xC0DE, 64);
    for &(user, item) in &pairs {
        assert_eq!(
            reloaded.predict(&fx.corpus, user, item),
            fx.model.predict(&fx.corpus, user, item),
            "checkpoint reload diverged at u{}/i{}",
            user.0,
            item.0
        );
    }
    // The reloaded model also satisfies the frozen-decomposition oracle.
    assert_model_parity(&reloaded, &fx.corpus, &pairs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized sweep: any (seed, user, item) drawn by proptest must
    /// agree across all three code paths, including via the engine.
    #[test]
    fn randomized_pairs_agree_across_all_three_paths(
        which in 0usize..3,
        user_draw in any::<u32>(),
        item_draw in any::<u32>(),
    ) {
        let h = &harnesses()[which];
        let ds = &h.fixture.dataset;
        let user = rrre::data::UserId(user_draw % ds.n_users as u32);
        let item = rrre::data::ItemId(item_draw % ds.n_items as u32);

        let full = h.fixture.model.predict(&h.fixture.corpus, user, item);
        let x_u = h.fixture.model.infer_user_tower(user, item);
        let y_i = h.fixture.model.infer_item_tower(user, item);
        let decomposed = h.fixture.model.infer_heads(user, item, &x_u, &y_i);
        prop_assert_eq!(full, decomposed, "predict vs decomposed at u{}/i{}", user.0, item.0);

        let resp = h.engine.submit(rrre_serve::Request::predict(user.0, item.0));
        prop_assert!(resp.ok, "engine refused u{}/i{}: {:?}", user.0, item.0, resp.error);
        let dto = resp.prediction.unwrap();
        prop_assert_eq!((dto.rating, dto.reliability), (full.rating, full.reliability),
            "engine diverged at u{}/i{}", user.0, item.0);
    }
}
