//! The adversarial-robustness oracle: the end-to-end contract behind the
//! committed `results/adversarial_grid.csv` artifact.
//!
//! Three guarantees, end to end across `rrre-data` (campaign generator),
//! `rrre-core` (poisoned fit + sweep) and `rrre-metrics` (grid assembly):
//!
//! * the sweep is a pure function of its config — two runs emit identical
//!   CSV bytes;
//! * the grid has the committed schema — header and one row per
//!   family × strength cell, every numeric field finite;
//! * the committed default sweep shows the paper-style dose response: at
//!   least one attack family's reliability-AP degradation grows
//!   monotonically with attack strength, and the committed artifact is
//!   exactly what the default config regenerates.

use rrre::core::{run_robustness_sweep, AttackEvalConfig};
use rrre::data::synth::AttackFamily;
use rrre::metrics::RobustnessGrid;

/// A two-cell sweep that keeps the determinism/schema oracles fast.
fn quick_cfg() -> AttackEvalConfig {
    AttackEvalConfig {
        families: vec![AttackFamily::Burst, AttackFamily::Mimicry],
        strengths: vec![0.1, 0.4],
        ..AttackEvalConfig::small()
    }
}

#[test]
fn sweep_csv_is_bit_identical_across_runs() {
    let cfg = quick_cfg();
    let a = run_robustness_sweep(&cfg, |_, _| {}).grid().to_csv();
    let b = run_robustness_sweep(&cfg, |_, _| {}).grid().to_csv();
    assert_eq!(a, b, "the robustness sweep must be a pure function of its config");
}

#[test]
fn grid_has_the_committed_schema_and_finite_cells() {
    let cfg = quick_cfg();
    let report = run_robustness_sweep(&cfg, |_, _| {});
    let grid = report.grid();
    let csv = grid.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(RobustnessGrid::CSV_HEADER));
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), cfg.families.len() * cfg.strengths.len());
    let n_cols = RobustnessGrid::CSV_HEADER.split(',').count();
    for row in rows {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), n_cols, "row `{row}` drifts from the schema");
        assert!(AttackFamily::parse(cols[0]).is_some(), "unknown family `{}`", cols[0]);
        for v in &cols[1..] {
            let x: f64 = v.parse().expect("numeric cell");
            assert!(x.is_finite(), "non-finite cell `{v}` in `{row}`");
        }
    }
    // Cell bookkeeping: injected counts scale with strength within a family.
    for pair in report.cells.chunks(2) {
        assert!(pair[0].n_injected < pair[1].n_injected);
    }
}

#[test]
fn default_sweep_reproduces_the_committed_artifact_with_a_monotone_family() {
    let cfg = AttackEvalConfig::small();
    let grid = run_robustness_sweep(&cfg, |_, _| {}).grid();

    let monotone = grid.monotone_degradation_families();
    assert!(
        !monotone.is_empty(),
        "at least one family must show monotone AP degradation with strength; grid:\n{}",
        grid.to_csv()
    );

    let committed_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/results/adversarial_grid.csv");
    let committed = std::fs::read_to_string(committed_path)
        .expect("results/adversarial_grid.csv must be committed");
    assert_eq!(
        grid.to_csv(),
        committed,
        "the default sweep must regenerate results/adversarial_grid.csv byte for byte \
         (regenerate with `rrre-serve attack-eval --out results/adversarial_grid.csv`)"
    );
}
