//! Determinism guarantees: every stage of the pipeline is a pure function
//! of its explicit seeds, so a published experiment reruns bit-identically.

use rand::{rngs::StdRng, SeedableRng};
use rrre::core::{Rrre, RrreConfig};
use rrre::data::synth::{generate, SynthConfig};
use rrre::data::{train_test_split, CorpusConfig, EncodedCorpus};
use rrre::text::word2vec::Word2VecConfig;

fn corpus_cfg() -> CorpusConfig {
    CorpusConfig {
        max_len: 16,
        word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn generator_is_seed_deterministic() {
    let cfg = SynthConfig::yelp_zip().scaled(0.05);
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.reviews.iter().zip(&b.reviews) {
        assert_eq!(x.user, y.user);
        assert_eq!(x.item, y.item);
        assert_eq!(x.rating, y.rating);
        assert_eq!(x.text, y.text);
        assert_eq!(x.timestamp, y.timestamp);
    }
}

#[test]
fn split_is_seed_deterministic() {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
    let a = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(9));
    let b = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(9));
    assert_eq!(a.train, b.train);
    assert_eq!(a.test, b.test);
    let c = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(10));
    assert_ne!(a.test, c.test);
}

#[test]
fn trained_model_predictions_are_deterministic() {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
    let corpus = EncodedCorpus::build(&ds, &corpus_cfg());
    let mut rng = StdRng::seed_from_u64(2);
    let split = train_test_split(&ds, 0.3, &mut rng);
    let cfg = RrreConfig { epochs: 2, k: 8, id_dim: 4, attn_dim: 4, fm_factors: 2, s_u: 3, s_i: 4, ..Default::default() };

    let run = || {
        let model = Rrre::fit(&ds, &corpus, &split.train, cfg);
        model.predict_reviews(&ds, &corpus, &split.test)
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rating, y.rating);
        assert_eq!(x.reliability, y.reliability);
    }
}

#[test]
fn different_model_seeds_change_predictions() {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
    let corpus = EncodedCorpus::build(&ds, &corpus_cfg());
    let mut rng = StdRng::seed_from_u64(2);
    let split = train_test_split(&ds, 0.3, &mut rng);
    let base = RrreConfig { epochs: 2, k: 8, id_dim: 4, attn_dim: 4, fm_factors: 2, s_u: 3, s_i: 4, ..Default::default() };

    let a = Rrre::fit(&ds, &corpus, &split.train, base).predict_reviews(&ds, &corpus, &split.test);
    let b = Rrre::fit(&ds, &corpus, &split.train, RrreConfig { seed: base.seed ^ 1, ..base })
        .predict_reviews(&ds, &corpus, &split.test);
    assert!(a.iter().zip(&b).any(|(x, y)| x.rating != y.rating));
}
