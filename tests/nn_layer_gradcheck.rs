//! Finite-difference audit of every nn layer RRRE is assembled from, each
//! on its own fixed seed. `model_gradcheck.rs` checks the composed
//! architectures; this file pins each building block in isolation so a
//! broken layer is named directly by the failing test instead of surfacing
//! as a composite-loss mismatch.

use rand::{rngs::StdRng, SeedableRng};
use rrre::core::parallel::{shard_count, shard_range, tree_reduce, GradShard};
use rrre::tensor::gradcheck::{assert_gradients_ok, GradCheck};
use rrre::tensor::nn::{AttentionPool, BiLstm, Embedding, FactorizationMachine, Linear, Lstm};
use rrre::tensor::{init, Params, Tape, Tensor};

#[test]
fn embedding_layer_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xE3B);
    let mut params = Params::new();
    let emb = Embedding::new(&mut params, &mut rng, "emb", 7, 4);
    assert_gradients_ok(&mut params, move |p, tape| {
        // Repeated ids: gradients must accumulate across duplicate rows.
        let e = emb.forward(tape, p, &[0, 3, 3, 6, 1]);
        let sq = tape.square(e);
        tape.mean_all(sq)
    });
}

#[test]
fn linear_layer_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x11E);
    let mut params = Params::new();
    let lin = Linear::new(&mut params, &mut rng, "lin", 5, 3);
    let x = init::normal(&mut rng, 4, 5, 0.0, 1.0);
    assert_gradients_ok(&mut params, move |p, tape| {
        let xv = tape.constant(x.clone());
        let y = lin.forward(tape, p, xv);
        let act = tape.tanh(y);
        let sq = tape.square(act);
        tape.mean_all(sq)
    });
}

#[test]
fn lstm_cell_step_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x157);
    let mut params = Params::new();
    let (in_dim, hidden) = (4usize, 3usize);
    let cell = Lstm::new(&mut params, &mut rng, "cell", in_dim, hidden);
    let x0 = init::normal(&mut rng, 1, in_dim, 0.0, 1.0);
    let x1 = init::normal(&mut rng, 1, in_dim, 0.0, 1.0);
    assert_gradients_ok(&mut params, move |p, tape| {
        // Two chained steps so gradients flow through both the gate maths
        // and the recurrent h/c carry.
        let h0 = tape.constant(Tensor::zeros(1, hidden));
        let c0 = tape.constant(Tensor::zeros(1, hidden));
        let x0v = tape.constant(x0.clone());
        let (h1, c1) = cell.step(tape, p, x0v, h0, c0);
        let x1v = tape.constant(x1.clone());
        let (h2, _c2) = cell.step(tape, p, x1v, h1, c1);
        let sq = tape.square(h2);
        tape.mean_all(sq)
    });
}

#[test]
fn lstm_directional_passes_over_sequences_pass_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x5E9);
    let mut params = Params::new();
    let lstm = Lstm::new(&mut params, &mut rng, "dir", 3, 4);
    let seq = init::normal(&mut rng, 5, 3, 0.0, 1.0);
    let seq_rev = seq.clone();
    let lstm_rev = lstm.clone();
    assert_gradients_ok(&mut params, move |p, tape| {
        let s = tape.constant(seq.clone());
        let h = lstm.forward_final(tape, p, s);
        let sq = tape.square(h);
        tape.mean_all(sq)
    });
    assert_gradients_ok(&mut params, move |p, tape| {
        let s = tape.constant(seq_rev.clone());
        let h = lstm_rev.forward_final_rev(tape, p, s);
        let sq = tape.square(h);
        tape.mean_all(sq)
    });
}

#[test]
fn bilstm_encoder_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xB15);
    let mut params = Params::new();
    let bilstm = BiLstm::new(&mut params, &mut rng, "bi", 3, 2);
    let seq = init::normal(&mut rng, 6, 3, 0.0, 1.0);
    assert_gradients_ok(&mut params, move |p, tape| {
        let s = tape.constant(seq.clone());
        let h = bilstm.forward(tape, p, s);
        let sq = tape.square(h);
        tape.mean_all(sq)
    });
}

#[test]
fn fraud_attention_pool_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xF9A);
    let mut params = Params::new();
    let (k, ctx_dim, attn_dim) = (4usize, 3usize, 5usize);
    let attn = AttentionPool::new(&mut params, &mut rng, "attn", k, ctx_dim, attn_dim);
    let items = init::normal(&mut rng, 5, k, 0.0, 1.0);
    let shared_ctx = init::normal(&mut rng, 1, ctx_dim, 0.0, 1.0);
    let per_row_ctx = init::normal(&mut rng, 5, ctx_dim, 0.0, 1.0);
    let mask = [true, true, false, true, true];

    // Shared `[1, ctx]` context, with a mask (the RRRE fraud-attention
    // configuration: masked softmax over per-review scores).
    let attn2 = attn.clone();
    let (items_a, ctx_a) = (items.clone(), shared_ctx);
    assert_gradients_ok(&mut params, move |p, tape| {
        let it = tape.constant(items_a.clone());
        let ctx = tape.constant(ctx_a.clone());
        let pooled = attn.forward(tape, p, it, ctx, Some(&mask));
        let sq = tape.square(pooled);
        tape.mean_all(sq)
    });

    // Per-row `[m, ctx]` context, unmasked.
    assert_gradients_ok(&mut params, move |p, tape| {
        let it = tape.constant(items.clone());
        let ctx = tape.constant(per_row_ctx.clone());
        let pooled = attn2.forward(tape, p, it, ctx, None);
        let sq = tape.square(pooled);
        tape.mean_all(sq)
    });
}

/// The data-parallel backward — per-example tapes accumulating into
/// positional `GradShard`s, combined by the fixed-order tree reduction —
/// audited directly against central finite differences of the *total*
/// minibatch loss. This closes the loop `tests/parallel_parity.rs` leaves
/// open: parity proves parallel ≡ serial, this proves the shared path is
/// the true gradient.
#[test]
fn parallel_backward_matches_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0x9A7);
    let mut params = Params::new();
    let lin1 = Linear::new(&mut params, &mut rng, "lin1", 4, 3);
    let lin2 = Linear::new(&mut params, &mut rng, "lin2", 3, 1);
    // 8 fixed "examples" — enough for two full shards plus the tree.
    let examples: Vec<Tensor> = (0..8).map(|_| init::normal(&mut rng, 1, 4, 0.0, 1.0)).collect();
    let n = examples.len();

    // One example's loss node: mean contribution of a tiny two-layer MLP.
    let example_loss = |p: &Params, tape: &mut Tape, x: &Tensor| {
        let xv = tape.constant(x.clone());
        let h = lin1.forward(tape, p, xv);
        let a = tape.tanh(h);
        let y = lin2.forward(tape, p, a);
        let sq = tape.square(y);
        let l = tape.mean_all(sq);
        tape.scale(l, 1.0 / n as f32)
    };

    // Analytic gradient via the parallel machinery: positional shards,
    // per-example `backward_into`, fixed-order tree reduction.
    let mut shards: Vec<GradShard> =
        (0..shard_count(n)).map(|_| GradShard::new(&params)).collect();
    for (s, shard) in shards.iter_mut().enumerate() {
        for e in shard_range(s, n) {
            let mut tape = Tape::new();
            let loss = example_loss(&params, &mut tape, &examples[e]);
            tape.backward_into(loss, &mut shard.grads);
        }
    }
    tree_reduce(&mut shards);
    let analytic: Vec<Vec<f32>> =
        params.ids().map(|id| shards[0].grads.grad(id).as_slice().to_vec()).collect();

    // Central finite differences of the total loss, per scalar.
    let total_loss = |p: &Params| -> f32 {
        examples
            .iter()
            .map(|x| {
                let mut tape = Tape::new();
                let l = example_loss(p, &mut tape, x);
                tape.value(l).item()
            })
            .sum()
    };
    let cfg = GradCheck::default();
    let ids: Vec<_> = params.ids().collect();
    for (pi, id) in ids.iter().enumerate() {
        for i in 0..params.get(*id).len() {
            let orig = params.get(*id).as_slice()[i];
            params.get_mut(*id).as_mut_slice()[i] = orig + cfg.epsilon;
            let f_plus = total_loss(&params);
            params.get_mut(*id).as_mut_slice()[i] = orig - cfg.epsilon;
            let f_minus = total_loss(&params);
            params.get_mut(*id).as_mut_slice()[i] = orig;

            let numeric = (f_plus - f_minus) / (2.0 * cfg.epsilon);
            let a = analytic[pi][i];
            let tol = cfg.atol + cfg.rtol * a.abs().max(numeric.abs());
            assert!(
                (a - numeric).abs() <= tol,
                "parallel backward off at {}[{i}]: analytic {a:.6} vs numeric {numeric:.6}",
                params.name(*id)
            );
        }
    }
}

#[test]
fn fm_head_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xF91);
    let mut params = Params::new();
    let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 6, 3);
    let x = init::normal(&mut rng, 4, 6, 0.0, 1.0);
    assert_gradients_ok(&mut params, move |p, tape| {
        let xv = tape.constant(x.clone());
        let y = fm.forward(tape, p, xv);
        let sq = tape.square(y);
        tape.mean_all(sq)
    });
}
