//! End-to-end integration: dataset generation → text pipeline → split →
//! RRRE training → joint evaluation → recommendation with reliable
//! explanations, across crate boundaries.

use rand::{rngs::StdRng, SeedableRng};
use rrre::core::{explain, recommend, Rrre, RrreConfig};
use rrre::data::synth::{generate, SynthConfig};
use rrre::data::{train_test_split, CorpusConfig, EncodedCorpus};
use rrre::metrics::{auc, brmse, ndcg_at_k};
use rrre::text::word2vec::Word2VecConfig;

fn small_corpus_cfg() -> CorpusConfig {
    CorpusConfig {
        max_len: 20,
        word2vec: Word2VecConfig { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn full_pipeline_learns_and_explains() {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.15));
    let corpus = EncodedCorpus::build(&dataset, &small_corpus_cfg());
    let mut rng = StdRng::seed_from_u64(1);
    let split = train_test_split(&dataset, 0.3, &mut rng);

    let cfg = RrreConfig { k: 32, s_u: 7, s_i: 8, ..Default::default() };
    let model = Rrre::fit(&dataset, &corpus, &split.train, cfg);

    let preds = model.predict_reviews(&dataset, &corpus, &split.test);
    let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
    let reliabilities: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
    let targets: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].rating).collect();
    let weights: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].label.as_f32()).collect();
    let labels: Vec<bool> = split.test.iter().map(|&i| dataset.reviews[i].label.is_benign()).collect();

    // Rating: beats predicting the train mean on benign reviews.
    let mean = split.train.iter().map(|&i| dataset.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
    let model_brmse = brmse(&ratings, &targets, &weights);
    let mean_brmse = brmse(&vec![mean; targets.len()], &targets, &weights);
    assert!(model_brmse < mean_brmse, "bRMSE {model_brmse} vs mean-predictor {mean_brmse}");

    // Reliability: better than chance, and the NDCG ranking is high.
    let rel_auc = auc(&reliabilities, &labels);
    assert!(rel_auc > 0.6, "reliability AUC {rel_auc}");
    let ndcg = ndcg_at_k(&reliabilities, &labels, 50.min(labels.len()));
    assert!(ndcg > 0.7, "NDCG@50 {ndcg}");

    // Recommendation + explanation pipeline produces consistent artefacts.
    let user = dataset.reviews[split.test[0]].user;
    let recs = recommend(&model, &dataset, &corpus, user, 3);
    assert_eq!(recs.len(), 3.min(dataset.n_items));
    for pair in recs.windows(2) {
        assert!(pair[0].reliability >= pair[1].reliability);
    }
    let exps = explain(&model, &dataset, &corpus, recs[0].item, 2);
    assert!(!exps.is_empty());
    for e in &exps {
        assert!((1.0..=5.0).contains(&e.rating));
        assert!((0.0..=1.0).contains(&e.reliability));
        assert_eq!(dataset.reviews[e.review_idx].item, recs[0].item);
    }
}

#[test]
fn biased_loss_beats_plain_loss_on_fraud_heavy_data() {
    // The paper's core claim (RRRE vs RRRE⁻, Table III): with fakes in the
    // training set, gating the rating loss by reliability improves bRMSE.
    // Use the fraud-heaviest preset to make the effect robust at test size.
    let dataset = generate(&SynthConfig::musics().scaled(0.12));
    let corpus = EncodedCorpus::build(&dataset, &small_corpus_cfg());
    let mut rng = StdRng::seed_from_u64(3);
    let split = train_test_split(&dataset, 0.3, &mut rng);
    let targets: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].rating).collect();
    let weights: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].label.as_f32()).collect();

    let cfg = RrreConfig { epochs: 8, k: 16, id_dim: 8, attn_dim: 8, fm_factors: 4, s_u: 5, s_i: 6, ..Default::default() };
    let evaluate = |cfg: RrreConfig| {
        let model = Rrre::fit(&dataset, &corpus, &split.train, cfg);
        let preds = model.predict_reviews(&dataset, &corpus, &split.test);
        let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
        brmse(&ratings, &targets, &weights)
    };
    let biased = evaluate(cfg);
    let plain = evaluate(cfg.minus());
    assert!(
        biased < plain + 0.02,
        "biased loss should not be worse: RRRE {biased} vs RRRE- {plain}"
    );
}

#[test]
fn dataset_persistence_roundtrips_through_the_pipeline() {
    let dataset = generate(&SynthConfig::cds().scaled(0.03));
    let dir = std::env::temp_dir().join("rrre-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ds.json");
    rrre::data::io::save_json(&dataset, &path).unwrap();
    let loaded = rrre::data::io::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The loaded dataset supports the whole downstream pipeline.
    let corpus = EncodedCorpus::build(&loaded, &small_corpus_cfg());
    let mut rng = StdRng::seed_from_u64(5);
    let split = train_test_split(&loaded, 0.3, &mut rng);
    let cfg = RrreConfig { epochs: 1, k: 8, id_dim: 4, attn_dim: 4, fm_factors: 2, s_u: 3, s_i: 3, ..Default::default() };
    let model = Rrre::fit(&loaded, &corpus, &split.train, cfg);
    let p = model.predict(&corpus, loaded.reviews[0].user, loaded.reviews[0].item);
    assert!(p.rating.is_finite() && p.reliability.is_finite());
}
