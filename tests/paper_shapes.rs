//! Heavy "paper shape" assertions — the headline qualitative claims of the
//! reproduction, checked end-to-end on small-scale data. These take minutes,
//! so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test paper_shapes -- --ignored
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rrre::baselines::rating::{Pmf, PmfConfig};
use rrre::baselines::reliability::{Rev2, Rev2Config};
use rrre::core::Rrre;
use rrre::prelude::*;

struct Prepared {
    ds: Dataset,
    corpus: EncodedCorpus,
    train: Vec<usize>,
    test: Vec<usize>,
}

fn prepare(preset: SynthConfig, scale: f64, seed: u64) -> Prepared {
    let ds = generate(&preset.scaled(scale));
    let corpus = EncodedCorpus::build(&ds, &CorpusConfig::default());
    let split = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(seed));
    Prepared { ds, corpus, train: split.train, test: split.test }
}

fn test_vectors(p: &Prepared) -> (Vec<f32>, Vec<f32>, Vec<bool>) {
    let targets = p.test.iter().map(|&i| p.ds.reviews[i].rating).collect();
    let weights = p.test.iter().map(|&i| p.ds.reviews[i].label.as_f32()).collect();
    let labels = p.test.iter().map(|&i| p.ds.reviews[i].label.is_benign()).collect();
    (targets, weights, labels)
}

/// Table III headline: RRRE beats PMF on bRMSE (YelpChi shape).
#[test]
#[ignore = "minutes-long; run with --ignored"]
fn rrre_beats_pmf_on_yelpchi_shape() {
    let p = prepare(SynthConfig::yelp_chi(), 0.25, 0x5917);
    let (targets, weights, _) = test_vectors(&p);

    let cfg = RrreConfig { k: 32, ..Default::default() };
    let rrre = Rrre::fit(&p.ds, &p.corpus, &p.train, cfg);
    let rrre_preds: Vec<f32> = rrre.predict_reviews(&p.ds, &p.corpus, &p.test).iter().map(|x| x.rating).collect();
    let rrre_brmse = brmse(&rrre_preds, &targets, &weights);

    let mut rng = StdRng::seed_from_u64(1);
    let pmf = Pmf::fit(&p.ds, &p.train, PmfConfig::default(), &mut rng);
    let pmf_brmse = brmse(&pmf.predict_reviews(&p.ds, &p.test), &targets, &weights);

    assert!(
        rrre_brmse < pmf_brmse,
        "RRRE {rrre_brmse:.3} should beat PMF {pmf_brmse:.3}"
    );
}

/// Table III ablation headline: the biased loss beats plain MSE where fraud
/// is concentrated.
#[test]
#[ignore = "minutes-long; run with --ignored"]
fn biased_loss_beats_plain_on_yelpchi_shape() {
    let p = prepare(SynthConfig::yelp_chi(), 0.25, 0x5917);
    let (targets, weights, _) = test_vectors(&p);
    let cfg = RrreConfig { k: 32, ..Default::default() };

    let evaluate = |cfg: RrreConfig| {
        let m = Rrre::fit(&p.ds, &p.corpus, &p.train, cfg);
        let preds: Vec<f32> = m.predict_reviews(&p.ds, &p.corpus, &p.test).iter().map(|x| x.rating).collect();
        brmse(&preds, &targets, &weights)
    };
    let biased = evaluate(cfg);
    let plain = evaluate(cfg.minus());
    assert!(biased < plain, "RRRE {biased:.3} should beat RRRE- {plain:.3} on YelpChi");
}

/// Table IV headline: RRRE's reliability AUC clearly beats the graph-only
/// REV2 on the Amazon shape (where the paper's gap is widest).
#[test]
#[ignore = "minutes-long; run with --ignored"]
fn rrre_beats_rev2_on_amazon_shape() {
    let p = prepare(SynthConfig::cds(), 0.25, 0x5917);
    let (_, _, labels) = test_vectors(&p);

    let cfg = RrreConfig { k: 32, ..Default::default() };
    let rrre = Rrre::fit(&p.ds, &p.corpus, &p.train, cfg);
    let rrre_scores: Vec<f32> =
        rrre.predict_reviews(&p.ds, &p.corpus, &p.test).iter().map(|x| x.reliability).collect();
    let rrre_auc = auc(&rrre_scores, &labels);

    let rev2 = Rev2::run(&p.ds, Rev2Config::default());
    let rev2_auc = auc(&rev2.score(&p.test), &labels);

    assert!(
        rrre_auc > rev2_auc + 0.05,
        "RRRE AUC {rrre_auc:.3} should clearly beat REV2 {rev2_auc:.3} on the Amazon shape"
    );
}

/// Fig. 2 headline: k = 32 beats k = 8 on rating quality.
#[test]
#[ignore = "minutes-long; run with --ignored"]
fn larger_embeddings_help_up_to_a_point() {
    let p = prepare(SynthConfig::yelp_chi(), 0.25, 0x5917);
    let (targets, weights, _) = test_vectors(&p);
    let evaluate = |k: usize| {
        let m = Rrre::fit(&p.ds, &p.corpus, &p.train, RrreConfig { k, ..Default::default() });
        let preds: Vec<f32> = m.predict_reviews(&p.ds, &p.corpus, &p.test).iter().map(|x| x.rating).collect();
        brmse(&preds, &targets, &weights)
    };
    let small = evaluate(8);
    let medium = evaluate(32);
    assert!(medium < small, "k=32 ({medium:.3}) should beat k=8 ({small:.3})");
}
