//! Numerical gradient check of complete model forward passes — not just the
//! individual layers (those are checked inside `rrre-tensor`), but the whole
//! assembled architectures: the RRRE joint loss through both towers and the
//! BiLSTM encoder, and the NARRE-style attention + FM composition.

use rand::{rngs::StdRng, SeedableRng};
use rrre::core::ReviewEncoder;
use rrre::core::{Pooling, Tower};
use rrre::tensor::gradcheck::assert_gradients_ok;
use rrre::tensor::nn::{Embedding, FactorizationMachine, Linear};
use rrre::tensor::{init, Params, Tensor};

/// Builds a miniature RRRE-shaped graph by hand and checks every gradient:
/// two towers over review matrices with masks and per-review contexts, the
/// concatenated reliability head with cross-entropy, the FM rating head
/// with a reliability-weighted MSE, and the λ-combined joint loss.
#[test]
fn full_rrre_shaped_joint_loss_passes_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    let mut params = Params::new();
    let (k, id_dim, attn_dim) = (6usize, 4usize, 5usize);
    let ctx_dim = 3 * id_dim;

    let user_emb = Embedding::new(&mut params, &mut rng, "u_emb", 3, id_dim);
    let item_emb = Embedding::new(&mut params, &mut rng, "i_emb", 4, id_dim);
    let user_tower = Tower::new(&mut params, &mut rng, "u_tower", k, ctx_dim, attn_dim, id_dim);
    let item_tower = Tower::new(&mut params, &mut rng, "i_tower", k, ctx_dim, attn_dim, id_dim);
    let rel_head = Linear::new(&mut params, &mut rng, "rel", 2 * id_dim, 2);
    let w_h = Linear::new(&mut params, &mut rng, "w_h", id_dim, id_dim);
    let w_e = Linear::new(&mut params, &mut rng, "w_e", id_dim, id_dim);
    let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 2 * id_dim, 3);

    let u_reviews = init::normal(&mut rng, 3, k, 0.0, 1.0);
    let i_reviews = init::normal(&mut rng, 4, k, 0.0, 1.0);
    let u_mask = [true, true, false];
    let i_mask = [true, true, true, false];

    assert_gradients_ok(&mut params, move |p, tape| {
        let e_u = user_emb.forward(tape, p, &[1]);
        let e_i = item_emb.forward(tape, p, &[2]);

        // Per-review contexts: target pair + counterpart ids.
        let dup3 = vec![0usize; 3];
        let dup4 = vec![0usize; 4];
        let u_rows_u = tape.gather_rows(e_u, &dup3);
        let u_rows_i = tape.gather_rows(e_i, &dup3);
        let u_cp = item_emb.forward(tape, p, &[0, 3, 0]);
        let u_ctx = tape.concat_cols(&[u_rows_u, u_rows_i, u_cp]);
        let i_rows_u = tape.gather_rows(e_u, &dup4);
        let i_rows_i = tape.gather_rows(e_i, &dup4);
        let i_cp = user_emb.forward(tape, p, &[0, 2, 1, 0]);
        let i_ctx = tape.concat_cols(&[i_rows_u, i_rows_i, i_cp]);

        let u_matrix = tape.constant(u_reviews.clone());
        let i_matrix = tape.constant(i_reviews.clone());
        let x_u = user_tower.forward(tape, p, u_matrix, &u_mask, u_ctx, Pooling::FraudAttention);
        let y_i = item_tower.forward(tape, p, i_matrix, &i_mask, i_ctx, Pooling::FraudAttention);

        let joint_repr = tape.concat_cols(&[x_u, y_i]);
        let logits = rel_head.forward(tape, p, joint_repr);
        let loss1 = tape.softmax_cross_entropy(logits, &[1], None);

        let xh = w_h.forward(tape, p, x_u);
        let ye = w_e.forward(tape, p, y_i);
        let a = tape.add(e_u, xh);
        let b = tape.add(e_i, ye);
        let fused = tape.concat_cols(&[a, b]);
        let rating = fm.forward(tape, p, fused);
        let loss2 = tape.weighted_mse(rating, &[4.0], &[1.0]);

        let l1 = tape.scale(loss1, 0.6);
        let l2 = tape.scale(loss2, 0.4);
        tape.add(l1, l2)
    });
}

/// Gradient-checks the encoder path end-to-end: word matrix → BiLSTM →
/// attention pooling → dense head, i.e. the `EncoderMode::EndToEnd` route.
#[test]
fn bilstm_through_attention_passes_gradcheck() {
    use rrre::data::synth::{generate, SynthConfig};
    use rrre::data::{CorpusConfig, EncodedCorpus};
    use rrre::text::word2vec::Word2VecConfig;

    let ds = generate(&SynthConfig::yelp_chi().scaled(0.02));
    let corpus = EncodedCorpus::build(
        &ds,
        &CorpusConfig {
            max_len: 6,
            word2vec: Word2VecConfig { dim: 4, epochs: 1, ..Default::default() },
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xB22);
    let mut params = Params::new();
    let encoder = ReviewEncoder::new(&mut params, &mut rng, 4, 6);
    let head = Linear::new(&mut params, &mut rng, "head", 6, 1);
    let target = Tensor::scalar(3.5);

    assert_gradients_ok(&mut params, move |p, tape| {
        // Encode two reviews, average, regress.
        let r0 = encoder.forward_review(tape, p, &corpus, 0);
        let r1 = encoder.forward_review(tape, p, &corpus, 1);
        let both = tape.concat_rows(&[r0, r1]);
        let pooled = tape.mean_rows(both);
        let pred = head.forward(tape, p, pooled);
        tape.mse(pred, &target)
    });
}
