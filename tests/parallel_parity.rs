//! The parallel-training parity oracle (tier 1): training with any worker
//! count must be **bit-identical** to serial training — the same per-epoch
//! loss bits and the same final weights, to the last f32 — across three
//! independently-seeded fixtures, plus a property sweep over
//! `(batch_size, threads)` combinations.
//!
//! This is the proof obligation behind `rrre_core::parallel`: shards are
//! positional (never per-worker), the gradient reduction is a fixed-order
//! pairwise tree, and the optimiser step is serial — so the thread count is
//! a pure throughput knob that can never change what the model learns.

use proptest::prelude::*;
use rrre_core::{Rrre, RrreConfig};
use rrre_testkit::FixtureSpec;

/// Three distinct master seeds ⇒ three distinct datasets, corpora and
/// weight initialisations (the same trio the parity oracle uses).
const SEEDS: [u64; 3] = [0x5EED, 0xA11CE, 0x0B0E];

/// The thread counts under test: serial, even split, a count that does not
/// divide the default batch, and more workers than this machine has cores.
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Per-epoch loss bits and final weight bits of one training run.
struct RunBits {
    losses: Vec<(usize, u32, u32, u32)>,
    weights: Vec<u32>,
}

fn train_bits(spec: FixtureSpec, cfg: RrreConfig) -> RunBits {
    let (dataset, corpus) = spec.corpus();
    let train: Vec<usize> = (0..dataset.len()).collect();
    let mut losses = Vec::new();
    let model = Rrre::fit_with_hook(&dataset, &corpus, &train, cfg, |s, _| {
        losses.push((s.epoch, s.loss.to_bits(), s.loss1.to_bits(), s.loss2.to_bits()))
    });
    let weights = model
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    RunBits { losses, weights }
}

#[test]
fn every_thread_count_matches_serial_bits_on_three_seeds() {
    for seed in SEEDS {
        let spec = FixtureSpec::small().with_seed(seed);
        let serial = train_bits(spec, spec.rrre_config().with_threads(1));
        assert!(!serial.losses.is_empty() && !serial.weights.is_empty());
        for threads in THREADS {
            let run = train_bits(spec, spec.rrre_config().with_threads(threads));
            assert_eq!(
                run.losses, serial.losses,
                "per-epoch loss bits drifted from serial (seed {seed:#x}, threads {threads})"
            );
            assert_eq!(
                run.weights, serial.weights,
                "final weight bits drifted from serial (seed {seed:#x}, threads {threads})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sweep awkward (batch_size, threads) combinations on the micro
    /// fixture: batches smaller than a shard, batches that leave ragged
    /// tail shards, and thread counts from serial to oversubscribed must
    /// all reproduce the serial bits.
    #[test]
    fn batch_and_thread_sweep_is_bit_identical(batch_size in 1usize..=9, threads in 2usize..=8) {
        let spec = FixtureSpec::micro().with_epochs(1);
        let base = RrreConfig { batch_size, ..spec.rrre_config() };
        let serial = train_bits(spec, base.with_threads(1));
        let parallel = train_bits(spec, base.with_threads(threads));
        prop_assert_eq!(
            serial.losses, parallel.losses,
            "loss bits drifted (batch_size {}, threads {})", batch_size, threads
        );
        prop_assert_eq!(
            serial.weights, parallel.weights,
            "weight bits drifted (batch_size {}, threads {})", batch_size, threads
        );
    }
}
