//! Property-based tests over the public API, spanning crates: metric
//! invariants, generator invariants and tensor algebra laws.

use proptest::prelude::*;
use rrre::data::synth::{generate, SynthConfig};
use rrre::metrics::{auc, average_precision, brmse, ndcg_at_k, rmse};
use rrre::tensor::Tensor;

/// A strategy producing parallel (scores, labels) vectors.
fn scored_labels(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    prop::collection::vec((0.0f32..1.0, any::<bool>()), 2..max_len)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_invariant_under_monotone_transform((scores, labels) in scored_labels(64)) {
        let transformed: Vec<f32> = scores.iter().map(|&s| 2.0 * s + 1.0).collect();
        let a = auc(&scores, &labels);
        let b = auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn auc_of_inverted_scores_is_complement((scores, labels) in scored_labels(64)) {
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let inverted: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let a = auc(&scores, &labels);
        let b = auc(&inverted, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-6, "{a} + {b} != 1");
    }

    #[test]
    fn metrics_are_bounded((scores, labels) in scored_labels(64)) {
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        let ap = average_precision(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&ap));
        for k in [1usize, 5, scores.len()] {
            let n = ndcg_at_k(&scores, &labels, k);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&n), "ndcg@{k} = {n}");
        }
    }

    #[test]
    fn brmse_reduces_to_rmse_with_unit_weights(
        pairs in prop::collection::vec((1.0f32..5.0, 1.0f32..5.0), 1..40)
    ) {
        let (preds, targets): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let ones = vec![1.0f32; preds.len()];
        prop_assert!((brmse(&preds, &targets, &ones) - rmse(&preds, &targets)).abs() < 1e-9);
    }

    #[test]
    fn brmse_never_exceeds_worst_benign_error(
        pairs in prop::collection::vec((1.0f32..5.0, 1.0f32..5.0, any::<bool>()), 1..40)
    ) {
        let preds: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let targets: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let weights: Vec<f32> = pairs.iter().map(|p| if p.2 { 1.0 } else { 0.0 }).collect();
        let worst = pairs
            .iter()
            .filter(|p| p.2)
            .map(|p| (p.0 - p.1).abs() as f64)
            .fold(0.0, f64::max);
        prop_assert!(brmse(&preds, &targets, &weights) <= worst + 1e-6);
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rrre::tensor::init::normal(&mut rng, 3, 4, 0.0, 1.0);
        let b = rrre::tensor::init::normal(&mut rng, 4, 2, 0.0, 1.0);
        let c = rrre::tensor::init::normal(&mut rng, 4, 2, 0.0, 1.0);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn concat_then_slice_is_identity(cols_a in 1usize..6, cols_b in 1usize..6, rows in 1usize..5) {
        let a = Tensor::full(rows, cols_a, 1.5);
        let b = Tensor::full(rows, cols_b, -2.5);
        let cat = Tensor::concat_cols(&[&a, &b]);
        prop_assert!(cat.slice_cols(0, cols_a).approx_eq(&a, 0.0));
        prop_assert!(cat.slice_cols(cols_a, cols_a + cols_b).approx_eq(&b, 0.0));
    }
}

proptest! {
    // Generator properties are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generator_invariants_hold_for_random_configs(
        seed in 0u64..1_000_000,
        fake_fraction in 0.05f64..0.4,
        // Scales below ~0.05 can leave a single item in the pool, where the
        // benign quota saturates on distinct (user, item) pairs and the fake
        // fraction legitimately overshoots; the ratio guarantee below is
        // only meaningful with a non-degenerate item pool.
        scale in 0.05f64..0.12,
    ) {
        let cfg = SynthConfig {
            fake_fraction,
            seed,
            ..SynthConfig::yelp_chi()
        }
        .scaled(scale);
        let ds = generate(&cfg);
        prop_assert!(!ds.is_empty());
        // All ratings are integer stars in range; ids dense; text non-empty.
        for r in &ds.reviews {
            prop_assert!((1.0..=5.0).contains(&r.rating));
            prop_assert_eq!(r.rating.fract(), 0.0);
            prop_assert!(r.user.index() < ds.n_users);
            prop_assert!(r.item.index() < ds.n_items);
            prop_assert!(!r.text.is_empty());
        }
        // Fake fraction lands near target (generation clamps at pair
        // exhaustion, so only an upper bound plus slack is guaranteed).
        let measured = ds.fake_fraction();
        prop_assert!(measured <= fake_fraction + 0.05, "measured {measured} vs target {fake_fraction}");
    }
}
