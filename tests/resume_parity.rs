//! Crash-and-resume parity (tier 1): a checkpointed training run that is
//! interrupted after two epochs and resumed from disk must reproduce the
//! uninterrupted run — bit-for-bit on the loss curve and the final
//! parameters, and inside the golden tolerance bands when expressed as a
//! full golden trace (the same harness that gates every other training
//! change).

use rrre_core::{evaluate, CheckpointConfig, EpochStats, Rrre, RrreConfig};
use rrre_testkit::golden::{capture, compare, EpochRecord, EvalRecord, GoldenTolerance, GoldenTrace, HeadRecord};
use rrre_testkit::{deterministic_pairs, FixtureSpec, TempDir};

const EPOCHS: usize = 4;
const INTERRUPT_AFTER: usize = 2;
const HEAD_PROBES: usize = 8;

fn stats_bits(stats: &[EpochStats]) -> Vec<(usize, u32, u32, u32)> {
    stats
        .iter()
        .map(|s| (s.epoch, s.loss.to_bits(), s.loss1.to_bits(), s.loss2.to_bits()))
        .collect()
}

#[test]
fn interrupted_and_resumed_run_matches_the_uninterrupted_golden_trace() {
    let spec = FixtureSpec::small().with_epochs(EPOCHS);
    let (dataset, corpus) = spec.corpus();
    let train: Vec<usize> = (0..dataset.len()).collect();

    // The uninterrupted reference run, via the exact harness the committed
    // goldens use.
    let (full_trace, full) = capture(spec, HEAD_PROBES);
    let mut full_stats = Vec::new();
    Rrre::fit_with_hook(&dataset, &corpus, &train, spec.rrre_config(), |s, _| {
        full_stats.push(s)
    });

    // The interrupted run: train to the interruption point with periodic
    // checkpoints, "crash" (drop everything), then resume from disk.
    let scratch = TempDir::new("resume-parity");
    let ckpt = CheckpointConfig { dir: scratch.path().to_path_buf(), every: 1, keep: 3 };

    let mut pieced_stats: Vec<EpochStats> = Vec::new();
    let first_leg = RrreConfig { epochs: INTERRUPT_AFTER, ..spec.rrre_config() };
    let out = Rrre::fit_checkpointed(&dataset, &corpus, &train, first_leg, &ckpt, |s, _| {
        pieced_stats.push(s)
    })
    .expect("first training leg");
    assert_eq!(out.completed_epochs, INTERRUPT_AFTER);
    assert!(out.diverged_at.is_none());
    drop(out); // the crash: the in-memory model is gone, only disk survives

    let out = Rrre::resume(&dataset, &corpus, &train, spec.rrre_config(), &ckpt, |s, _| {
        pieced_stats.push(s)
    })
    .expect("resume from the newest checkpoint");
    assert_eq!(out.resumed_from, Some(INTERRUPT_AFTER));
    assert_eq!(out.completed_epochs, EPOCHS);
    assert!(out.diverged_at.is_none());
    let resumed = out.model;

    // Exact witness: the pieced-together loss curve is the uninterrupted
    // one, bit for bit, and so are the final parameters.
    assert_eq!(
        stats_bits(&pieced_stats),
        stats_bits(&full_stats),
        "resumed loss curve must be bit-identical to the uninterrupted run"
    );
    let full_params: Vec<u32> = full
        .model
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    let resumed_params: Vec<u32> = resumed
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(full_params, resumed_params, "final parameters must be bit-identical");

    // Golden-trace witness: express the resumed run as a full trace and
    // hold it to the same tolerance bands the committed goldens use.
    let joint = evaluate(&resumed, &dataset, &corpus, &train);
    let resumed_trace = GoldenTrace {
        epochs: pieced_stats
            .iter()
            .map(|s| EpochRecord {
                epoch: s.epoch,
                loss: s.loss as f64,
                loss1: s.loss1 as f64,
                loss2: s.loss2 as f64,
            })
            .collect(),
        eval: EvalRecord {
            auc: joint.auc,
            ap_benign: joint.ap_benign,
            rmse: joint.rmse,
            brmse: joint.brmse,
        },
        heads: deterministic_pairs(&dataset, spec.seed, HEAD_PROBES)
            .into_iter()
            .map(|(u, i)| {
                let p = resumed.predict(&corpus, u, i);
                HeadRecord {
                    user: u.0,
                    item: i.0,
                    rating: p.rating as f64,
                    reliability: p.reliability as f64,
                }
            })
            .collect(),
    };
    if let Err(errors) = compare(&full_trace, &resumed_trace, GoldenTolerance::default()) {
        panic!(
            "resumed trace leaves the golden tolerance bands ({} violation(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        );
    }
}

/// Crash-and-resume under *parallel* training: interrupt a 2-thread run
/// mid-way, resume it with a different thread count (3), and demand the
/// pieced-together run reproduce an uninterrupted **serial** run bit for
/// bit — loss curve and final weights. Thread count is not checkpoint
/// state, so a crashed 16-core job may legally finish on a laptop.
#[test]
fn parallel_crash_resume_with_different_thread_count_is_bit_identical() {
    let spec = FixtureSpec::small().with_epochs(EPOCHS);
    let (dataset, corpus) = spec.corpus();
    let train: Vec<usize> = (0..dataset.len()).collect();

    // Serial, uninterrupted reference.
    let mut serial_stats = Vec::new();
    let serial = Rrre::fit_with_hook(
        &dataset,
        &corpus,
        &train,
        spec.rrre_config().with_threads(1),
        |s, _| serial_stats.push(s),
    );

    let scratch = TempDir::new("resume-parity-parallel");
    let ckpt = CheckpointConfig { dir: scratch.path().to_path_buf(), every: 1, keep: 3 };

    // First leg on 2 threads, "crashing" after the interrupt epoch.
    let mut pieced_stats: Vec<EpochStats> = Vec::new();
    let first_leg =
        RrreConfig { epochs: INTERRUPT_AFTER, ..spec.rrre_config().with_threads(2) };
    let out = Rrre::fit_checkpointed(&dataset, &corpus, &train, first_leg, &ckpt, |s, _| {
        pieced_stats.push(s)
    })
    .expect("first parallel training leg");
    assert_eq!(out.completed_epochs, INTERRUPT_AFTER);
    drop(out); // the crash: only the checkpoint directory survives

    // Resume on 3 threads.
    let out = Rrre::resume(
        &dataset,
        &corpus,
        &train,
        spec.rrre_config().with_threads(3),
        &ckpt,
        |s, _| pieced_stats.push(s),
    )
    .expect("resume with a different thread count");
    assert_eq!(out.resumed_from, Some(INTERRUPT_AFTER));
    assert_eq!(out.completed_epochs, EPOCHS);
    let resumed = out.model;

    assert_eq!(
        stats_bits(&pieced_stats),
        stats_bits(&serial_stats),
        "2-thread leg + 3-thread resume must reproduce the serial loss curve bit-for-bit"
    );
    let serial_params: Vec<u32> = serial
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    let resumed_params: Vec<u32> = resumed
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(
        serial_params, resumed_params,
        "final weights must be bit-identical across the thread-count switch"
    );
}
