#!/usr/bin/env bash
# Open-loop serving baseline: the same Recommend workload driven on a fixed
# arrival schedule against a 1-shard and a 3-shard deployment of the same
# demo artifact, plus two pipelined open-loop rows against the event core
# (1 conn x 64 in-flight, and 1k conns x 1 in-flight). Regenerates
# BENCH_serve.json at the repo root.
#
# Tunables (env): RATE (req/s, default 200), REQUESTS (default 400),
# K (Recommend k, default 10).
set -euo pipefail
cd "$(dirname "$0")/.."

RATE="${RATE:-200}"
REQUESTS="${REQUESTS:-400}"
K="${K:-10}"

cargo build --release --workspace >/dev/null

SERVE=target/release/rrre-serve
WORK="$(mktemp -d)"
PIDS=()
cleanup() { kill "${PIDS[@]:-}" 2>/dev/null || true; rm -rf "$WORK"; }
trap cleanup EXIT

wait_addr() { # <logfile> — scrape the "listening on ADDR" line
  local log="$1" addr
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$log" 2>/dev/null | head -n 1)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.1
  done
  echo "no 'listening on' line in $log" >&2
  return 1
}

run_config() { # <shards> — burst summary JSON on stdout
  local shards="$1"
  local dir="$WORK/model$shards" addrs=()
  "$SERVE" demo "$dir" --shards "$shards" >/dev/null 2>&1
  local pids=()
  for s in $(seq 0 $((shards - 1))); do
    "$SERVE" serve "$dir" --addr 127.0.0.1:0 --shard-id "$s" \
      </dev/null >"$WORK/bench$shards-$s.log" 2>&1 &
    pids+=($!)
  done
  PIDS+=("${pids[@]}")
  for s in $(seq 0 $((shards - 1))); do
    addrs[$s]="$(wait_addr "$WORK/bench$shards-$s.log")"
  done
  local map="$WORK/map$shards.json"
  "$SERVE" shardmap "$dir" --replicas "$(IFS=';'; echo "${addrs[*]}")" >"$map"
  "$SERVE" burst --shard-map "$map" --requests "$REQUESTS" \
    --users 8 --recommend-k "$K" --open-loop --rate "$RATE" --json \
    --timeout-ms 2000 --seed 42
  kill "${pids[@]}" 2>/dev/null || true
}

run_pipelined() { # <conns> <depth> — pipelined burst summary JSON on stdout
  local conns="$1" depth="$2"
  local dir="$WORK/modelp"
  [ -d "$dir" ] || "$SERVE" demo "$dir" >/dev/null 2>&1
  local log="$WORK/pipe$conns-$depth.log"
  "$SERVE" serve "$dir" --addr 127.0.0.1:0 --max-conns $((conns + 64)) \
    </dev/null >"$log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  local addr
  addr="$(wait_addr "$log")"
  "$SERVE" burst --replicas "$addr" --requests "$REQUESTS" \
    --users 8 --recommend-k "$K" --rate "$RATE" --json \
    --pipeline-depth "$depth" --conns "$conns" --timeout-ms 2000 --seed 42
  kill "$pid" 2>/dev/null || true
}

echo "==> 1-shard baseline" >&2
one="$(run_config 1)"
echo "==> 3-shard scatter-gather" >&2
three="$(run_config 3)"
echo "==> pipelined: 1 conn x 64 in-flight" >&2
pipe_deep="$(run_pipelined 1 64)"
echo "==> pipelined: 1000 conns x 1 in-flight" >&2
pipe_wide="$(run_pipelined 1000 1)"

cat > BENCH_serve.json <<EOF
{
  "bench": "open-loop Recommend burst (k=$K) at $RATE req/s over the demo artifact (synthetic YelpChi, scale 0.05)",
  "command": "scripts/bench_serve.sh",
  "note": "fixed arrival schedule; p50/p99 are client-observed end-to-end latencies in ms; the 3-shard run scatter-gathers every request across three single-replica shards on loopback; the pipelined rows drive the event core directly (raw connections, correlation-id matching, no retries) — one deep window and one thousand single-slot connections",
  "single_shard": $one,
  "three_shard": $three,
  "pipelined_1x64": $pipe_deep,
  "pipelined_1000x1": $pipe_wide
}
EOF
echo "wrote BENCH_serve.json:"
sed 's/^/  /' BENCH_serve.json
