#!/usr/bin/env bash
# Open-loop serving baseline: the same Recommend workload driven on a fixed
# arrival schedule against a 1-shard and a 3-shard deployment of the same
# demo artifact, plus two pipelined open-loop rows against the event core
# (1 conn x 64 in-flight, and 1k conns x 1 in-flight). Regenerates
# BENCH_serve.json at the repo root.
#
# Tunables (env): RATE (req/s, default 200), REQUESTS (default 400),
# K (Recommend k, default 10), INGEST_COUNT (ingest rows, default 300).
set -euo pipefail
cd "$(dirname "$0")/.."

RATE="${RATE:-200}"
REQUESTS="${REQUESTS:-400}"
K="${K:-10}"
INGEST_COUNT="${INGEST_COUNT:-300}"

cargo build --release --workspace >/dev/null

SERVE=target/release/rrre-serve
WORK="$(mktemp -d)"
PIDS=()
cleanup() { kill "${PIDS[@]:-}" 2>/dev/null || true; rm -rf "$WORK"; }
trap cleanup EXIT

wait_addr() { # <logfile> — scrape the "listening on ADDR" line
  local log="$1" addr
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$log" 2>/dev/null | head -n 1)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.1
  done
  echo "no 'listening on' line in $log" >&2
  return 1
}

run_config() { # <shards> — burst summary JSON on stdout
  local shards="$1"
  local dir="$WORK/model$shards" addrs=()
  "$SERVE" demo "$dir" --shards "$shards" >/dev/null 2>&1
  local pids=()
  for s in $(seq 0 $((shards - 1))); do
    "$SERVE" serve "$dir" --addr 127.0.0.1:0 --shard-id "$s" \
      </dev/null >"$WORK/bench$shards-$s.log" 2>&1 &
    pids+=($!)
  done
  PIDS+=("${pids[@]}")
  for s in $(seq 0 $((shards - 1))); do
    addrs[$s]="$(wait_addr "$WORK/bench$shards-$s.log")"
  done
  local map="$WORK/map$shards.json"
  "$SERVE" shardmap "$dir" --replicas "$(IFS=';'; echo "${addrs[*]}")" >"$map"
  "$SERVE" burst --shard-map "$map" --requests "$REQUESTS" \
    --users 8 --recommend-k "$K" --open-loop --rate "$RATE" --json \
    --timeout-ms 2000 --seed 42
  kill "${pids[@]}" 2>/dev/null || true
}

run_pipelined() { # <conns> <depth> — pipelined burst summary JSON on stdout
  local conns="$1" depth="$2"
  local dir="$WORK/modelp"
  [ -d "$dir" ] || "$SERVE" demo "$dir" >/dev/null 2>&1
  local log="$WORK/pipe$conns-$depth.log"
  "$SERVE" serve "$dir" --addr 127.0.0.1:0 --max-conns $((conns + 64)) \
    </dev/null >"$log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  local addr
  addr="$(wait_addr "$log")"
  "$SERVE" burst --replicas "$addr" --requests "$REQUESTS" \
    --users 8 --recommend-k "$K" --rate "$RATE" --json \
    --pipeline-depth "$depth" --conns "$conns" --timeout-ms 2000 --seed 42
  kill "$pid" 2>/dev/null || true
}

run_ingest() { # <fsync_batch: 0 = per-record, N>1 = batched> — throughput row JSON
  # Durable streaming-ingest append path in isolation: --refresh-every 0
  # keeps tower refreshes out of the row, so the records/sec difference
  # between the two rows is the cost of the per-record fsync promise.
  local batch="$1"
  local dir="$WORK/ingest$batch" label="per-record"
  "$SERVE" demo "$dir" >/dev/null 2>&1
  local log="$WORK/ingest$batch.log"
  local flags=(--ingest --refresh-every 0)
  if [ "$batch" -gt 1 ]; then
    flags+=(--fsync-batch "$batch")
    label="batched-$batch"
  fi
  "$SERVE" serve "$dir" --addr 127.0.0.1:0 "${flags[@]}" \
    </dev/null >"$log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  local addr
  addr="$(wait_addr "$log")"
  local t0 t1
  t0="$(date +%s%N)"
  "$SERVE" ingest "$addr" --count "$INGEST_COUNT" --users 8 --items 2 \
    --timeout-ms 2000 >"$WORK/ingest$batch.out" || return 1
  t1="$(date +%s%N)"
  # Every record must be acked fresh — a refused or deduplicated record
  # would mean the row timed something other than durable appends.
  grep -q "ingested total=$INGEST_COUNT new=$INGEST_COUNT dup=0 failed=0" \
    "$WORK/ingest$batch.out" || return 1
  local elapsed_ms=$(( (t1 - t0) / 1000000 ))
  [ "$elapsed_ms" -gt 0 ] || elapsed_ms=1
  kill "$pid" 2>/dev/null || true
  printf '{"records":%s,"fsync":"%s","elapsed_ms":%s,"records_per_sec":%s}' \
    "$INGEST_COUNT" "$label" "$elapsed_ms" "$(( INGEST_COUNT * 1000 / elapsed_ms ))"
}

run_ingest_repl() { # <ack: leader|quorum> — replicated ingest throughput row JSON
  # The same durable append path behind a 3-replica fleet: the delta
  # between the two rows is the cost of holding each ack until a quorum
  # (leader + one follower) has the record fsynced, vs acking after the
  # leader's local fsync and replicating in the background.
  local ack="$1"
  local base="$WORK/repl-$ack"
  "$SERVE" demo "$base-0" >/dev/null 2>&1
  cp -r "$base-0" "$base-1"
  cp -r "$base-0" "$base-2"
  local port=$(( (RANDOM % 5000) + 46000 ))
  local l="127.0.0.1:$port" f1="127.0.0.1:$((port + 1))" f2="127.0.0.1:$((port + 2))"
  local pids=()
  "$SERVE" serve "$base-1" --addr "$f1" --ingest --refresh-every 0 \
    --replicate-from "$l" </dev/null >"$base-f1.log" 2>&1 &
  pids+=($!)
  "$SERVE" serve "$base-2" --addr "$f2" --ingest --refresh-every 0 \
    --replicate-from "$l" </dev/null >"$base-f2.log" 2>&1 &
  pids+=($!)
  wait_addr "$base-f1.log" >/dev/null
  wait_addr "$base-f2.log" >/dev/null
  "$SERVE" serve "$base-0" --addr "$l" --ingest --refresh-every 0 \
    --followers "$f1,$f2" --ack "$ack" </dev/null >"$base-l.log" 2>&1 &
  pids+=($!)
  PIDS+=("${pids[@]}")
  wait_addr "$base-l.log" >/dev/null
  local t0 t1
  t0="$(date +%s%N)"
  "$SERVE" ingest "$l" --count "$INGEST_COUNT" --users 8 --items 2 \
    --timeout-ms 10000 >"$base.out" || return 1
  t1="$(date +%s%N)"
  grep -q "ingested total=$INGEST_COUNT new=$INGEST_COUNT dup=0 failed=0" \
    "$base.out" || return 1
  local elapsed_ms=$(( (t1 - t0) / 1000000 ))
  [ "$elapsed_ms" -gt 0 ] || elapsed_ms=1
  kill "${pids[@]}" 2>/dev/null || true
  printf '{"records":%s,"replicas":3,"ack":"%s","elapsed_ms":%s,"records_per_sec":%s}' \
    "$INGEST_COUNT" "$ack" "$elapsed_ms" "$(( INGEST_COUNT * 1000 / elapsed_ms ))"
}

echo "==> 1-shard baseline" >&2
one="$(run_config 1)"
echo "==> 3-shard scatter-gather" >&2
three="$(run_config 3)"
echo "==> pipelined: 1 conn x 64 in-flight" >&2
pipe_deep="$(run_pipelined 1 64)"
echo "==> pipelined: 1000 conns x 1 in-flight" >&2
pipe_wide="$(run_pipelined 1000 1)"
echo "==> ingest throughput: fsync per record" >&2
ingest_strict="$(run_ingest 0)" || { echo "FAIL: per-record ingest row" >&2; exit 1; }
echo "==> ingest throughput: fsync batched (64)" >&2
ingest_batched="$(run_ingest 64)" || { echo "FAIL: batched ingest row" >&2; exit 1; }
echo "==> replicated ingest throughput: 3 replicas, --ack quorum" >&2
ingest_quorum="$(run_ingest_repl quorum)" || { echo "FAIL: quorum-ack ingest row" >&2; exit 1; }
echo "==> replicated ingest throughput: 3 replicas, --ack leader" >&2
ingest_leader="$(run_ingest_repl leader)" || { echo "FAIL: leader-ack ingest row" >&2; exit 1; }

cat > BENCH_serve.json <<EOF
{
  "bench": "open-loop Recommend burst (k=$K) at $RATE req/s over the demo artifact (synthetic YelpChi, scale 0.05)",
  "command": "scripts/bench_serve.sh",
  "note": "fixed arrival schedule; p50/p99 are client-observed end-to-end latencies in ms; the 3-shard run scatter-gathers every request across three single-replica shards on loopback; the pipelined rows drive the event core directly (raw connections, correlation-id matching, no retries) — one deep window and one thousand single-slot connections; the ingest rows stream $INGEST_COUNT IngestReview records through the WAL append path with tower refresh disabled, so their delta is the cost of the per-record fsync durability promise vs one fsync per 64 records; the replicated rows push the same stream through a 3-replica fleet on loopback (per-record fsync everywhere), quorum-ack holding each ack for leader + one follower fsync vs leader-ack's local-fsync-then-background-replicate",
  "single_shard": $one,
  "three_shard": $three,
  "pipelined_1x64": $pipe_deep,
  "pipelined_1000x1": $pipe_wide,
  "ingest_fsync_per_record": $ingest_strict,
  "ingest_fsync_batched": $ingest_batched,
  "ingest_repl_quorum_ack": $ingest_quorum,
  "ingest_repl_leader_ack": $ingest_leader
}
EOF
echo "wrote BENCH_serve.json:"
sed 's/^/  /' BENCH_serve.json
