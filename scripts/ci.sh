#!/usr/bin/env bash
# Full local CI gate: everything must build in release, every workspace
# test must pass, and the Criterion benches must at least compile.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace so the rrre-serve binary the smoke drills below exercise is
# rebuilt too (a bare `cargo build` only covers the root package).
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --benches"
cargo build --benches

# Thread-matrix smoke: the tier-1 root suite must pass with the training
# thread count forced through the RRRE_THREADS override — the fixtures every
# root test trains are bit-identical at any thread count, so a failure here
# is a determinism regression in the parallel engine.
for t in 1 4; do
  echo "==> tier-1 suite under RRRE_THREADS=$t"
  RRRE_THREADS="$t" cargo test -q
done

echo "==> parallel parity oracles (explicit thread counts)"
cargo test -q --test parallel_parity --test golden_trace --test resume_parity

echo "==> resilience gates (chaos robustness, client failover, retry idempotency)"
cargo test -q -p rrre-serve --test chaos_robustness
cargo test -q -p rrre-client --test failover --test retry_idempotency

echo "==> event-core gates (frame decoder properties, pipelining, overload, reload, protocol)"
cargo test -q -p rrre-serve --test frame_decoder_props --test pipelining \
  --test protocol_robustness --test overload_supervision --test reload_fault

echo "==> connection-scale soak (5k concurrent conns, idle + loris + active)"
# Two fds per connection live in the test process; the soak guards itself
# and skips if the limit stays too small after our best effort to raise it.
ulimit -n 16384 2>/dev/null || true
if [ "$(ulimit -n)" -ge 10752 ]; then
  cargo test --release -q -p rrre-serve --test conn_scale -- --ignored
else
  echo "    SKIP: fd soft limit $(ulimit -n) < 10752; the 5k soak needs more"
fi

echo "==> crash-recovery smoke (train -> abort -> resume)"
SMOKE="$(mktemp -d)"
SRV_PID=()
PRX_PID=()
cleanup() {
  kill "${SRV_PID[@]:-}" "${PRX_PID[@]:-}" 2>/dev/null || true
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$SMOKE"
}
trap cleanup EXIT
SERVE=target/release/rrre-serve
CHAOS=target/release/rrre-chaos-proxy

full="$("$SERVE" train "$SMOKE/full" --epochs 4 2>/dev/null | tail -n 1)"
echo "    uninterrupted: $full"

# The abort flag exits 137 right after epoch 2's checkpoint lands — the
# scripted stand-in for a SIGKILL between epochs.
set +e
"$SERVE" train "$SMOKE/ckpt" --epochs 4 --abort-after-epoch 2 >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "    FAIL: aborted run exited $status, expected 137" >&2
  exit 1
fi

# Resuming on a different thread count must not change a single bit.
resumed="$("$SERVE" train "$SMOKE/ckpt" --epochs 4 --resume --threads 3 2>/dev/null | tail -n 1)"
echo "    resumed:       $resumed"
if [ "$full" != "$resumed" ]; then
  echo "    FAIL: resumed run does not reproduce the uninterrupted run" >&2
  echo "      full:    $full" >&2
  echo "      resumed: $resumed" >&2
  exit 1
fi

echo "==> parallel determinism drill (loss bits across thread counts)"
# The stdout line carries the exact loss bits; any drift between thread
# counts fails the gate.
for t in 2 4; do
  par="$("$SERVE" train "$SMOKE/par$t" --epochs 4 --threads "$t" 2>/dev/null | tail -n 1)"
  echo "    threads=$t:     $par"
  if [ "$full" != "$par" ]; then
    echo "    FAIL: loss bits at --threads $t differ from serial" >&2
    echo "      serial:    $full" >&2
    echo "      threads=$t: $par" >&2
    exit 1
  fi
done

echo "==> chaos failover smoke (3 replicas, SIGKILL one mid-burst)"
# Three replicas serve one artifact, each behind a deterministic chaos
# proxy (transparent here — the proxies exist so the drill exercises the
# same interposition path the chaos tests use). One replica is SIGKILLed
# mid-burst; the client must finish with zero visible failures and the
# killed replica's breaker must be open in the final snapshot.
"$SERVE" demo "$SMOKE/model" >/dev/null 2>&1

wait_addr() { # <logfile> — scrape the "listening on ADDR" line
  local log="$1" addr
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$log" 2>/dev/null | head -n 1)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.1
  done
  echo "    FAIL: no 'listening on' line in $log" >&2
  return 1
}

SRV_ADDR=()
PRX_ADDR=()
for i in 0 1 2; do
  "$SERVE" serve "$SMOKE/model" --addr 127.0.0.1:0 \
    </dev/null >"$SMOKE/serve$i.log" 2>&1 &
  SRV_PID[$i]=$!
done
for i in 0 1 2; do
  SRV_ADDR[$i]="$(wait_addr "$SMOKE/serve$i.log")"
  # The proxy parks on stdin; `tail -f /dev/null` holds the pipe open so
  # it keeps relaying until we tear the pipeline down.
  tail -f /dev/null | "$CHAOS" --upstream "${SRV_ADDR[$i]}" --seed $((90 + i)) \
    >"$SMOKE/proxy$i.log" 2>&1 &
  PRX_PID[$i]=$!
done
for i in 0 1 2; do
  PRX_ADDR[$i]="$(wait_addr "$SMOKE/proxy$i.log")"
done

"$SERVE" burst --replicas "${PRX_ADDR[0]},${PRX_ADDR[1]},${PRX_ADDR[2]}" \
  --requests 80 --gap-ms 10 --users 2 --items 2 \
  --retries 3 --timeout-ms 800 --seed 7 \
  >"$SMOKE/burst.log" 2>"$SMOKE/burst.err" &
BURST_PID=$!
sleep 0.25
kill -9 "${SRV_PID[1]}"
set +e
wait "$BURST_PID"
burst_status=$?
set -e
sed 's/^/    /' "$SMOKE/burst.log"
if [ "$burst_status" -ne 0 ]; then
  echo "    FAIL: burst exited $burst_status (client-visible failures)" >&2
  sed 's/^/    /' "$SMOKE/burst.err" >&2
  exit 1
fi
if ! grep -q "failed=0" "$SMOKE/burst.log"; then
  echo "    FAIL: burst summary does not report failed=0" >&2
  exit 1
fi
if ! grep "^replica ${PRX_ADDR[1]} " "$SMOKE/burst.log" | grep -q "breaker_open=true"; then
  echo "    FAIL: the killed replica's breaker did not open" >&2
  exit 1
fi

echo "==> kill-one-shard chaos smoke (3 shards x 2 replicas, SIGKILL a whole shard mid-burst)"
# A 3-shard fleet, two replicas per shard, every replica behind a chaos
# proxy. Mid-burst, BOTH replicas of shard 1 are SIGKILLed — the shard is
# gone, not just degraded. The scatter-gather client must finish with zero
# client-visible failures: ranking answers over the survivors come back
# flagged `degraded`, never wrong, and the unaffected shards' replicas
# must show zero failures of their own.
"$SERVE" demo "$SMOKE/smodel" --shards 3 >/dev/null 2>&1

SH_SRV_PID=()
SH_PRX_PID=()
SH_PRX_ADDR=()
slot=0
for shard in 0 1 2; do
  for rep in 0 1; do
    "$SERVE" serve "$SMOKE/smodel" --addr 127.0.0.1:0 --shard-id "$shard" \
      </dev/null >"$SMOKE/shard$shard-$rep.log" 2>&1 &
    SH_SRV_PID[$slot]=$!
    slot=$((slot + 1))
  done
done
slot=0
for shard in 0 1 2; do
  for rep in 0 1; do
    up="$(wait_addr "$SMOKE/shard$shard-$rep.log")"
    tail -f /dev/null | "$CHAOS" --upstream "$up" --seed $((200 + slot)) \
      >"$SMOKE/sproxy$slot.log" 2>&1 &
    SH_PRX_PID[$slot]=$!
    slot=$((slot + 1))
  done
done
for i in 0 1 2 3 4 5; do
  SH_PRX_ADDR[$i]="$(wait_addr "$SMOKE/sproxy$i.log")"
done
SRV_PID+=("${SH_SRV_PID[@]}")
PRX_PID+=("${SH_PRX_PID[@]}")

"$SERVE" shardmap "$SMOKE/smodel" --replicas \
  "${SH_PRX_ADDR[0]},${SH_PRX_ADDR[1]};${SH_PRX_ADDR[2]},${SH_PRX_ADDR[3]};${SH_PRX_ADDR[4]},${SH_PRX_ADDR[5]}" \
  >"$SMOKE/shardmap.json"

# Recommend workload: every request scatters across all three shards, so
# the dead shard degrades answers instead of failing point lookups.
"$SERVE" burst --shard-map "$SMOKE/shardmap.json" \
  --requests 80 --gap-ms 10 --users 3 --recommend-k 5 \
  --retries 3 --timeout-ms 800 --seed 11 \
  >"$SMOKE/sburst.log" 2>"$SMOKE/sburst.err" &
SBURST_PID=$!
sleep 0.25
kill -9 "${SH_SRV_PID[2]}" "${SH_SRV_PID[3]}" # both replicas of shard 1
set +e
wait "$SBURST_PID"
sburst_status=$?
set -e
sed 's/^/    /' "$SMOKE/sburst.log"
if [ "$sburst_status" -ne 0 ]; then
  echo "    FAIL: sharded burst exited $sburst_status (client-visible failures)" >&2
  sed 's/^/    /' "$SMOKE/sburst.err" >&2
  exit 1
fi
if ! grep -q "failed=0" "$SMOKE/sburst.log"; then
  echo "    FAIL: sharded burst summary does not report failed=0" >&2
  exit 1
fi
if grep -q " degraded=0 " "$SMOKE/sburst.log"; then
  echo "    FAIL: killing a whole shard produced no degraded answers" >&2
  exit 1
fi
for shard in 0 2; do
  if grep "^shard $shard replica " "$SMOKE/sburst.log" | grep -vq "failures=0"; then
    echo "    FAIL: unaffected shard $shard saw request failures" >&2
    exit 1
  fi
done

# The per-shard serving counters must be live: a surviving replica's Stats
# shows the scatter legs it served, and no cross-shard misroutes.
stats="$("$SERVE" query "${SH_PRX_ADDR[0]}" '{"op":"Stats"}' --timeout-ms 800)"
echo "    shard-0 stats: $(echo "$stats" | grep -o '"scatter_fanout":[0-9]*\|"cross_shard_rejects":[0-9]*' | tr '\n' ' ')"
if echo "$stats" | grep -q '"scatter_fanout":0[,}]'; then
  echo "    FAIL: shard 0 served a scatter burst but counted zero fan-out legs" >&2
  exit 1
fi
if ! echo "$stats" | grep -q '"cross_shard_rejects":0[,}]'; then
  echo "    FAIL: shard-routed client misrouted requests (cross_shard_rejects != 0)" >&2
  exit 1
fi

echo "==> durable ingest smoke (ingest, SIGKILL, replay, compaction, fail-closed corruption)"
# The exactly-once drill from the command line: 12 reviews are acked, the
# server is SIGKILLed with no chance to flush anything beyond the WAL, and
# a restarted server must know every acked seq id. The `ingest` verb
# derives each review deterministically from its seq, so re-running the
# identical command IS the client retry — zero lost records shows up as
# dup=12 (a lost ack would re-ingest fresh), zero duplicates shows up in
# the folded count compaction reports.
"$SERVE" demo "$SMOKE/imodel" >/dev/null 2>&1

"$SERVE" serve "$SMOKE/imodel" --addr 127.0.0.1:0 --ingest \
  </dev/null >"$SMOKE/ingest1.log" 2>&1 &
ING_PID=$!
SRV_PID+=("$ING_PID")
ING_ADDR="$(wait_addr "$SMOKE/ingest1.log")"
"$SERVE" ingest "$ING_ADDR" --count 12 --users 2 --items 2 --timeout-ms 2000 \
  >"$SMOKE/ingest1.out"
if ! grep -q "ingested total=12 new=12 dup=0 failed=0" "$SMOKE/ingest1.out"; then
  echo "    FAIL: first ingest pass did not ack 12 fresh records" >&2
  sed 's/^/    /' "$SMOKE/ingest1.out" >&2
  exit 1
fi
kill -9 "$ING_PID"

"$SERVE" serve "$SMOKE/imodel" --addr 127.0.0.1:0 --ingest \
  </dev/null >"$SMOKE/ingest2.log" 2>&1 &
ING_PID=$!
SRV_PID+=("$ING_PID")
ING_ADDR="$(wait_addr "$SMOKE/ingest2.log")"
"$SERVE" ingest "$ING_ADDR" --count 12 --users 2 --items 2 --timeout-ms 2000 \
  >"$SMOKE/ingest2.out"
if ! grep -q "ingested total=12 new=0 dup=12 failed=0" "$SMOKE/ingest2.out"; then
  echo "    FAIL: post-SIGKILL resend must dedup all 12 acked records (lost or duplicated ingest)" >&2
  sed 's/^/    /' "$SMOKE/ingest2.out" >&2
  exit 1
fi
echo "    SIGKILL + replay: 12/12 acked records deduplicated on resend"

# Compaction folds exactly the 12 WAL records — not 24 — into a new
# artifact generation: the replayed duplicates were never applied twice.
"$SERVE" compact "$ING_ADDR" --timeout-ms 5000 >"$SMOKE/compact.out"
sed 's/^/    /' "$SMOKE/compact.out"
if ! grep -q "compacted folded=12 generation=2" "$SMOKE/compact.out"; then
  echo "    FAIL: compaction must fold exactly the 12 acked records into generation 2" >&2
  exit 1
fi

# WAL-corruption fail-closed check: land 3 more records so a WAL segment
# is live again, SIGKILL, flip one byte inside the first record's payload
# (offset 10 sits mid-JSON, past the length/CRC header), and the restart
# must refuse to serve rather than replay records it cannot trust.
"$SERVE" ingest "$ING_ADDR" --count 3 --seq-start 100 --users 2 --items 2 \
  --timeout-ms 2000 >"$SMOKE/ingest3.out"
if ! grep -q "ingested total=3 new=3 dup=0 failed=0" "$SMOKE/ingest3.out"; then
  echo "    FAIL: post-compaction ingest did not ack 3 fresh records" >&2
  sed 's/^/    /' "$SMOKE/ingest3.out" >&2
  exit 1
fi
kill -9 "$ING_PID"
seg="$(ls "$SMOKE/imodel/wal"/seg-*.log 2>/dev/null | head -n 1)"
if [ -z "$seg" ] || [ ! -s "$seg" ]; then
  echo "    FAIL: expected a non-empty WAL segment under $SMOKE/imodel/wal" >&2
  exit 1
fi
orig="$(dd if="$seg" bs=1 skip=10 count=1 2>/dev/null | od -An -tu1 | tr -d ' ')"
printf "$(printf '\\x%02x' $(( (orig + 1) % 256 )))" \
  | dd of="$seg" bs=1 seek=10 count=1 conv=notrunc 2>/dev/null
set +e
timeout 30 "$SERVE" serve "$SMOKE/imodel" --addr 127.0.0.1:0 --ingest \
  </dev/null >"$SMOKE/ingest-corrupt.log" 2>&1
corrupt_status=$?
set -e
if [ "$corrupt_status" -eq 0 ]; then
  echo "    FAIL: a corrupt mid-WAL record must refuse to serve (fail closed)" >&2
  sed 's/^/    /' "$SMOKE/ingest-corrupt.log" >&2
  exit 1
fi
echo "    corrupt WAL record: startup refused (exit $corrupt_status) — fail closed"

echo "==> kill-the-leader replication smoke (3 replicas, quorum acks, fenced promote)"
# Three replicas of one artifact with intra-shard WAL replication: 12
# reviews are acked at --ack quorum, the leader is SIGKILLed, a caught-up
# follower is promoted to epoch 2, and the identical resend against the
# new leader must come back dup=12 — a lost ack would re-ingest fresh.
# Compacting both survivors must fold exactly those 12 records and leave
# byte-identical artifacts (a duplicate application would change bytes).
"$SERVE" demo "$SMOKE/rmodel0" >/dev/null 2>&1
cp -r "$SMOKE/rmodel0" "$SMOKE/rmodel1"
cp -r "$SMOKE/rmodel0" "$SMOKE/rmodel2"

# Replication config needs every address up front (the leader lists its
# followers; followers name the leader), so the fleet gets fixed ports.
RBASE=$(( (RANDOM % 5000) + 41000 ))
RL="127.0.0.1:$RBASE"
RF1="127.0.0.1:$((RBASE + 1))"
RF2="127.0.0.1:$((RBASE + 2))"

# Followers boot first (the leader's shippers dial them), then the leader.
"$SERVE" serve "$SMOKE/rmodel1" --addr "$RF1" --ingest --replicate-from "$RL" \
  </dev/null >"$SMOKE/repl1.log" 2>&1 &
RPL_PID1=$!
"$SERVE" serve "$SMOKE/rmodel2" --addr "$RF2" --ingest --replicate-from "$RL" \
  </dev/null >"$SMOKE/repl2.log" 2>&1 &
RPL_PID2=$!
SRV_PID+=("$RPL_PID1" "$RPL_PID2")
wait_addr "$SMOKE/repl1.log" >/dev/null
wait_addr "$SMOKE/repl2.log" >/dev/null
"$SERVE" serve "$SMOKE/rmodel0" --addr "$RL" --ingest \
  --followers "$RF1,$RF2" --ack quorum \
  </dev/null >"$SMOKE/repl0.log" 2>&1 &
RPL_PID0=$!
SRV_PID+=("$RPL_PID0")
wait_addr "$SMOKE/repl0.log" >/dev/null

"$SERVE" ingest "$RL" --count 12 --users 2 --items 2 --timeout-ms 5000 \
  >"$SMOKE/repl-ingest1.out"
if ! grep -q "ingested total=12 new=12 dup=0 failed=0" "$SMOKE/repl-ingest1.out"; then
  echo "    FAIL: quorum-ack ingest did not ack 12 fresh records" >&2
  sed 's/^/    /' "$SMOKE/repl-ingest1.out" >&2
  exit 1
fi

# Quorum only guarantees leader + one follower; wait until BOTH followers
# report the full log so whichever one we promote is provably caught up.
for faddr in "$RF1" "$RF2"; do
  converged=0
  for _ in $(seq 1 100); do
    if "$SERVE" query "$faddr" '{"op":"Stats"}' --timeout-ms 2000 2>/dev/null \
        | grep -q '"replicated_seq":12[,}]'; then
      converged=1
      break
    fi
    sleep 0.1
  done
  if [ "$converged" -ne 1 ]; then
    echo "    FAIL: follower $faddr never converged to replicated_seq=12" >&2
    exit 1
  fi
done

kill -9 "$RPL_PID0"
"$SERVE" promote "$RF1" --epoch 2 --peers "$RF2" --timeout-ms 5000 \
  >"$SMOKE/repl-promote.out"
if ! grep -q "promoted epoch=2" "$SMOKE/repl-promote.out"; then
  echo "    FAIL: promote did not install epoch 2 on the survivor" >&2
  sed 's/^/    /' "$SMOKE/repl-promote.out" >&2
  exit 1
fi

# The identical resend IS the client retry after losing the leader: every
# acked seq must dedup against the promoted survivor's log.
"$SERVE" ingest "$RF1" --count 12 --users 2 --items 2 --timeout-ms 5000 \
  >"$SMOKE/repl-ingest2.out"
if ! grep -q "ingested total=12 new=0 dup=12 failed=0" "$SMOKE/repl-ingest2.out"; then
  echo "    FAIL: resend after leader SIGKILL must dedup all 12 acked records" >&2
  sed 's/^/    /' "$SMOKE/repl-ingest2.out" >&2
  exit 1
fi
echo "    SIGKILL leader + promote: 12/12 acked records deduplicated on the new leader"

for raddr in "$RF1" "$RF2"; do
  "$SERVE" compact "$raddr" --timeout-ms 10000 >"$SMOKE/repl-compact-$raddr.out"
  if ! grep -q "compacted folded=12 generation=2" "$SMOKE/repl-compact-$raddr.out"; then
    echo "    FAIL: survivor $raddr must fold exactly the 12 acked records" >&2
    sed 's/^/    /' "$SMOKE/repl-compact-$raddr.out" >&2
    exit 1
  fi
done

# Byte-identical survivors, excluding per-replica operational state (the
# epoch file and the ledger's segment watermark) and the wal/ directory.
compared=0
for f in $(cd "$SMOKE/rmodel1" && find . -maxdepth 1 -type f | sort); do
  case "$f" in
    ./repl_epoch*|./ingest_ledger.json*) continue ;;
  esac
  if ! cmp -s "$SMOKE/rmodel1/$f" "$SMOKE/rmodel2/$f"; then
    echo "    FAIL: post-compaction artifact file $f differs between survivors" >&2
    exit 1
  fi
  compared=$((compared + 1))
done
if [ "$compared" -lt 3 ]; then
  echo "    FAIL: only $compared artifact files compared — the fleet dirs look wrong" >&2
  exit 1
fi
echo "    survivors byte-identical after compaction ($compared files compared)"
kill "$RPL_PID1" "$RPL_PID2" 2>/dev/null || true

echo "==> adversarial robustness grid (regenerate + byte-diff vs committed artifact)"
# The committed Table-IV-style grid must regenerate bit-identically from
# its fixed seeds: any drift means the sweep is no longer a pure function
# of its config (or someone forgot to re-commit the artifact).
"$SERVE" attack-eval --out "$SMOKE/adversarial_grid.csv" \
  >/dev/null 2>"$SMOKE/attack_eval.err"
if ! cmp -s "$SMOKE/adversarial_grid.csv" results/adversarial_grid.csv; then
  echo "    FAIL: regenerated grid differs from committed results/adversarial_grid.csv" >&2
  diff results/adversarial_grid.csv "$SMOKE/adversarial_grid.csv" | head -n 20 >&2
  exit 1
fi
echo "    results/adversarial_grid.csv reproduced byte-for-byte"

# Schema gate over a quick 2-family x 2-strength sweep: the header must
# match the committed artifact's and every cell must emit exactly one
# complete row — column drift or missing cells fail the gate.
"$SERVE" attack-eval --families template,mimicry --strengths 0.1,0.3 \
  --out "$SMOKE/attack_quick.csv" >/dev/null 2>&1
header="$(head -n 1 results/adversarial_grid.csv)"
quick_header="$(head -n 1 "$SMOKE/attack_quick.csv")"
if [ "$quick_header" != "$header" ]; then
  echo "    FAIL: grid schema drift" >&2
  echo "      committed: $header" >&2
  echo "      sweep:     $quick_header" >&2
  exit 1
fi
quick_rows="$(tail -n +2 "$SMOKE/attack_quick.csv" | wc -l)"
if [ "$quick_rows" -ne 4 ]; then
  echo "    FAIL: 2x2 sweep emitted $quick_rows rows, expected 4" >&2
  exit 1
fi
n_cols="$(echo "$header" | tr ',' '\n' | wc -l)"
bad_rows="$(tail -n +2 "$SMOKE/attack_quick.csv" | awk -F',' -v n="$n_cols" 'NF != n' | wc -l)"
if [ "$bad_rows" -ne 0 ]; then
  echo "    FAIL: $bad_rows sweep rows have the wrong column count" >&2
  exit 1
fi
echo "    2x2 quick sweep: header + shape match the committed schema"

echo "==> CI gate passed"
