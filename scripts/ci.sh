#!/usr/bin/env bash
# Full local CI gate: everything must build in release, every workspace
# test must pass, and the Criterion benches must at least compile.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --benches"
cargo build --benches

echo "==> CI gate passed"
