#!/usr/bin/env bash
# Full local CI gate: everything must build in release, every workspace
# test must pass, and the Criterion benches must at least compile.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace so the rrre-serve binary the smoke drills below exercise is
# rebuilt too (a bare `cargo build` only covers the root package).
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --benches"
cargo build --benches

# Thread-matrix smoke: the tier-1 root suite must pass with the training
# thread count forced through the RRRE_THREADS override — the fixtures every
# root test trains are bit-identical at any thread count, so a failure here
# is a determinism regression in the parallel engine.
for t in 1 4; do
  echo "==> tier-1 suite under RRRE_THREADS=$t"
  RRRE_THREADS="$t" cargo test -q
done

echo "==> parallel parity oracles (explicit thread counts)"
cargo test -q --test parallel_parity --test golden_trace --test resume_parity

echo "==> crash-recovery smoke (train -> abort -> resume)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
SERVE=target/release/rrre-serve

full="$("$SERVE" train "$SMOKE/full" --epochs 4 2>/dev/null | tail -n 1)"
echo "    uninterrupted: $full"

# The abort flag exits 137 right after epoch 2's checkpoint lands — the
# scripted stand-in for a SIGKILL between epochs.
set +e
"$SERVE" train "$SMOKE/ckpt" --epochs 4 --abort-after-epoch 2 >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "    FAIL: aborted run exited $status, expected 137" >&2
  exit 1
fi

# Resuming on a different thread count must not change a single bit.
resumed="$("$SERVE" train "$SMOKE/ckpt" --epochs 4 --resume --threads 3 2>/dev/null | tail -n 1)"
echo "    resumed:       $resumed"
if [ "$full" != "$resumed" ]; then
  echo "    FAIL: resumed run does not reproduce the uninterrupted run" >&2
  echo "      full:    $full" >&2
  echo "      resumed: $resumed" >&2
  exit 1
fi

echo "==> parallel determinism drill (loss bits across thread counts)"
# The stdout line carries the exact loss bits; any drift between thread
# counts fails the gate.
for t in 2 4; do
  par="$("$SERVE" train "$SMOKE/par$t" --epochs 4 --threads "$t" 2>/dev/null | tail -n 1)"
  echo "    threads=$t:     $par"
  if [ "$full" != "$par" ]; then
    echo "    FAIL: loss bits at --threads $t differ from serial" >&2
    echo "      serial:    $full" >&2
    echo "      threads=$t: $par" >&2
    exit 1
  fi
done

echo "==> CI gate passed"
