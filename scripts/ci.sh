#!/usr/bin/env bash
# Full local CI gate: everything must build in release, every workspace
# test must pass, and the Criterion benches must at least compile.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --benches"
cargo build --benches

echo "==> crash-recovery smoke (train -> abort -> resume)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
SERVE=target/release/rrre-serve

full="$("$SERVE" train "$SMOKE/full" --epochs 4 2>/dev/null | tail -n 1)"
echo "    uninterrupted: $full"

# The abort flag exits 137 right after epoch 2's checkpoint lands — the
# scripted stand-in for a SIGKILL between epochs.
set +e
"$SERVE" train "$SMOKE/ckpt" --epochs 4 --abort-after-epoch 2 >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "    FAIL: aborted run exited $status, expected 137" >&2
  exit 1
fi

resumed="$("$SERVE" train "$SMOKE/ckpt" --epochs 4 --resume 2>/dev/null | tail -n 1)"
echo "    resumed:       $resumed"
if [ "$full" != "$resumed" ]; then
  echo "    FAIL: resumed run does not reproduce the uninterrupted run" >&2
  echo "      full:    $full" >&2
  echo "      resumed: $resumed" >&2
  exit 1
fi

echo "==> CI gate passed"
