//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies cannot be downloaded. This crate is a clean-room,
//! std-only reimplementation of exactly the surface the workspace calls:
//!
//! - [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! - [`SeedableRng::seed_from_u64`]
//! - [`rngs::StdRng`]
//! - [`seq::SliceRandom::shuffle`]
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! (but equally deterministic) stream than upstream's ChaCha12. Nothing in
//! the workspace depends on upstream's exact stream, only on seed-stable
//! reproducibility within this repository.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly over their natural domain
/// (`[0, 1)` for floats, the full value range for integers, fair coin for
/// `bool`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits of a 32-bit draw → uniform multiples of 2^-24 in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits of a 64-bit draw → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `hi < lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // Widen to 128 bits so the span never overflows; the modulo
                // bias over a 64-bit draw is negligible for workspace use.
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // Floating rounding can land exactly on `hi`; fold that
                // (vanishingly rare) draw back to `lo` to stay half-open.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over `T`'s natural domain (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic default generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12); only
    /// in-repo seed stability is promised.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors;
            // guarantees a non-zero state for every seed.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The generator's raw internal state, for exact persistence (e.g.
        /// resumable training checkpoints). Restoring with
        /// [`StdRng::from_state`] continues the identical stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which xoshiro256++ cannot leave
        /// (and [`SeedableRng::seed_from_u64`] can never produce).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "StdRng::from_state: all-zero state");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        // Inclusive integer ranges reach both endpoints.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.gen_range(0u8..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = heads as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn works_through_mut_ref_and_impl_rng() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(8);
        let r = &mut rng;
        assert!(draw(r) < 100);
        assert!(draw(&mut rng) < 100);
    }
}
