//! Offline stand-in for the subset of `serde` used by this workspace.
//!
//! The build environment has no network access, so upstream serde cannot be
//! downloaded. This crate keeps upstream's *spelling* — `Serialize` /
//! `Deserialize` traits, a `derive` feature re-exporting derive macros of
//! the same names — but swaps the internals for a much simpler data model:
//! every value serializes into a [`Content`] tree (the shape of a JSON
//! document), and deserializes back out of one. `serde_json` in
//! `third_party/` is the only consumer of that tree.
//!
//! Supported shapes (all this workspace needs):
//! - named structs ⇄ maps
//! - newtype structs ⇄ their inner value
//! - tuple structs ⇄ sequences
//! - unit-variant enums ⇄ variant-name strings
//! - primitives, `String`, `Option<T>`, `Vec<T>`
//!
//! Known departure from upstream: all numbers travel as `f64`, so integers
//! above 2^53 lose precision. Nothing in the workspace serializes values
//! that large (ids, counts, timestamps in days, and hyper-parameters only).

use std::fmt;

/// A parsed/parseable value tree, mirroring the JSON data model.
///
/// Maps preserve insertion order (a `Vec` of pairs, not a hash map) so that
/// serialization round-trips are deterministic and diffs are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (see module docs for the f64 caveat).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The value under `key` if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is an integral `Num` in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Short human label for error messages ("map", "string", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Num(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse the value out of a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Look up a required struct field in a map, with a helpful error.
///
/// Used by derive-generated code; not part of upstream serde's API.
pub fn content_field<'c>(content: &'c Content, name: &str) -> Result<&'c Content, DeError> {
    match content {
        Content::Map(_) => content
            .get(name)
            .ok_or_else(|| DeError(format!("missing field `{name}`"))),
        other => Err(DeError(format!(
            "expected map with field `{name}`, found {}",
            other.kind()
        ))),
    }
}

/// Look up a struct field in a map, yielding `Null` when the key is absent
/// so that `Option` fields may be omitted on the wire. Non-map content is
/// an immediate error.
///
/// Used by derive-generated code; not part of upstream serde's API.
pub fn content_field_or_null<'c>(content: &'c Content, name: &str) -> Result<&'c Content, DeError> {
    static NULL: Content = Content::Null;
    match content {
        Content::Map(_) => Ok(content.get(name).unwrap_or(&NULL)),
        other => Err(DeError(format!(
            "expected map with field `{name}`, found {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n = content
                    .as_f64()
                    .ok_or_else(|| DeError(format!(
                        "expected number, found {}", content.kind()
                    )))?;
                if n.fract() != 0.0 {
                    return Err(DeError(format!("expected integer, found {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError(format!(
                        "number {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError(format!(
                        "expected number, found {}", content.kind()
                    )))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_bool()
            .ok_or_else(|| DeError(format!("expected bool, found {}", content.kind())))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, found {}", content.kind())))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, found {}", content.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

// A `Content` is trivially its own wire form; this is what lets callers use
// `serde_json::Value` (an alias for `Content`) with `from_str`/`to_string`.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        let v = vec![1.5f32, -2.25];
        assert_eq!(Vec::<f32>::from_content(&v.to_content()), Ok(v));
        assert_eq!(Option::<u8>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u8>::from_content(&3u8.to_content()), Ok(Some(3)));
    }

    #[test]
    fn type_mismatches_fail_loudly() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(u8::from_content(&Content::Num(300.0)).is_err());
        assert!(u32::from_content(&Content::Num(1.5)).is_err());
        assert!(bool::from_content(&Content::Num(1.0)).is_err());
        assert!(content_field(&Content::Map(vec![]), "absent").is_err());
        assert!(content_field(&Content::Null, "absent").is_err());
    }
}
