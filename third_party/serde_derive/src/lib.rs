//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's offline serde stand-in.
//!
//! Upstream serde_derive needs `syn`/`quote`, which cannot be downloaded in
//! this environment, so this crate parses the item token stream directly
//! with nothing but the built-in `proc_macro` API. It supports exactly the
//! shapes the workspace derives on:
//!
//! - named-field structs      → JSON-style maps
//! - one-field tuple structs  → transparent newtypes (inner value)
//! - n-field tuple structs    → sequences
//! - unit-variant enums       → variant-name strings
//!
//! Generics, lifetimes, payload-carrying enum variants, and serde attributes
//! are intentionally unsupported and fail the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize` (workspace stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (workspace stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let keyword = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };

    match toks.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let shape = match keyword.as_str() {
                "struct" => Shape::Named(parse_named_fields(g.stream())),
                "enum" => Shape::UnitEnum(parse_unit_variants(g.stream(), &name)),
                other => panic!("serde_derive: unsupported item kind `{other}`"),
            };
            Item { name, shape }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(keyword, "struct", "serde_derive: parenthesised {keyword}?");
            Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            }
        }
        other => panic!("serde_derive: unsupported item body for `{name}`: {other:?}"),
    }
}

/// Skip any number of outer attributes (`#[...]`, including doc comments) and
/// an optional visibility (`pub`, `pub(crate)`, …).
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(field)) => {
                fields.push(field.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, found {other:?}"),
                }
                // Skip the type: everything up to the next comma that sits at
                // angle-bracket depth 0.
                let mut depth = 0i32;
                loop {
                    match toks.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            depth += 1;
                            toks.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                            depth -= 1;
                            toks.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                            toks.next();
                            break;
                        }
                        Some(_) => {
                            toks.next();
                        }
                    }
                }
            }
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(v)) => {
                variants.push(v.to_string());
                match toks.next() {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    other => panic!(
                        "serde_derive: enum `{enum_name}` has a non-unit variant \
                         `{last}` ({other:?}); only unit variants are supported",
                        last = variants.last().unwrap()
                    ),
                }
            }
            other => panic!("serde_derive: expected variant name in `{enum_name}`, found {other:?}"),
        }
    }
    assert!(
        !variants.is_empty(),
        "serde_derive: cannot derive for empty enum `{enum_name}`"
    );
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        fields += 1; // no trailing comma after the last field
    }
    assert!(fields > 0, "serde_derive: tuple struct with no fields");
    fields
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then reparsed into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_content(&self.{f})));\n"
                ));
            }
            format!(
                "let mut m = ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut pushes = String::new();
            for i in 0..*n {
                pushes.push_str(&format!(
                    "s.push(::serde::Serialize::to_content(&self.{i}));\n"
                ));
            }
            format!("let mut s = ::std::vec::Vec::new();\n{pushes}::serde::Content::Seq(s)")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "::serde::Content::Str(::std::string::String::from(match self {{ {arms} }}))"
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            // Absent keys deserialize from `Null`, so `Option` fields may be
            // omitted on the wire; non-optional fields still fail (with the
            // field name in the message) because they reject `Null`.
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content_field_or_null(content, \"{f}\")?)\
                         .map_err(|e| ::serde::DeError(::std::format!(\
                         \"field `{f}` of {name}: {{}}\", e.0)))?,\n"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Shape::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,\n"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| ::serde::DeError(\
                 ::std::format!(\"expected sequence for {name}, found {{}}\", content.kind())))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"expected {n} elements for {name}, found {{}}\", items.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),\n")
                })
                .collect();
            format!(
                "match content.as_str() {{\n{arms}\
                 ::std::option::Option::Some(other) => ::std::result::Result::Err(\
                 ::serde::DeError(::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 ::std::option::Option::None => ::std::result::Result::Err(\
                 ::serde::DeError(::std::format!(\"expected string variant for {name}, found {{}}\", content.kind()))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
