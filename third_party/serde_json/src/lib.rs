//! Offline stand-in for the subset of `serde_json` used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and a [`Value`] tree.
//!
//! Works against the workspace's serde stand-in, whose data model *is* a
//! JSON value tree ([`serde::Content`]), so this crate is just a JSON
//! writer and a recursive-descent JSON parser over that tree.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// An untyped JSON value — alias for the serde stand-in's content tree.
pub type Value = Content;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact single-line JSON string.
///
/// The output never contains raw control characters (they are `\u`-escaped),
/// so one serialized value is always exactly one line — a property the
/// newline-delimited wire protocol in `rrre-serve` relies on.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None)?;
    Ok(out)
}

/// Serialize `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(0))?;
    Ok(out)
}

/// Parse a value of type `T` out of a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(Error::new)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Rebuild a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_content(value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Num(n) => write_number(*n, out)?,
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_content(item, out, indent.map(|d| d + 1))?;
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent.map(|d| d + 1))?;
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
    Ok(())
}

fn write_number(n: f64, out: &mut String) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::new(format!("cannot serialize non-finite number {n}")));
    }
    // Integral values in the f64-exact range print without a fraction, so
    // ids and counts round-trip as integers.
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a low surrogate must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("invalid codepoint"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?
                            };
                            s.push(ch);
                            continue; // parse_hex4 already advanced past the digits
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new(format!(
                        "raw control character 0x{b:02x} in string at byte {}",
                        self.pos
                    )));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Content::Num)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}"] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json, "round-trip of {json}");
        }
    }

    #[test]
    fn nested_value_round_trips() {
        let json = r#"{"name":"yelp","ids":[1,2,3],"nested":{"ok":true,"x":null},"f":-2.25}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1F600} ünïcode";
        let json = to_string(&s.to_string()).unwrap();
        assert!(!json.contains('\n'), "escaped output must stay on one line");
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Surrogate-pair escapes decode too.
        let grin: String = from_str(r#""😀""#).unwrap();
        assert_eq!(grin, "\u{1F600}");
    }

    #[test]
    fn pretty_output_parses_back() {
        let json = r#"{"a":[1,2],"b":{"c":"d"}}"#;
        let v: Value = from_str(json).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("01a").is_err());
    }

    #[test]
    fn typed_round_trip_through_text() {
        let v = vec![1u32, 5, 9];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,5,9]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
