//! Offline stand-in for the subset of `criterion` used by this workspace's
//! `harness = false` bench targets.
//!
//! The build environment has no network access, so upstream criterion
//! cannot be downloaded. This crate keeps the bench-file grammar —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `criterion_group!`
//! (both forms), `criterion_main!` — and implements a simple wall-clock
//! harness: per benchmark it warms up once, then times `sample_size`
//! batches (or until `measurement_time` elapses) and prints min/mean/max
//! per-iteration time. No statistics engine, no HTML reports, no baseline
//! comparison — those belong to upstream; this exists so `cargo bench`
//! produces honest numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to every bench function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Builder: soft wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Start a named group sharing per-group configuration.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            measurement_time,
        }
    }

    /// Upstream prints a summary at exit; the stand-in has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Soft wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id, for groups whose name already says what varies.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle handed to the closure of every benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Warm-up sample; also used to pick an iteration count per sample so
    // that sub-microsecond routines get averaged over many iterations.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let warm = bencher.samples.last().copied().unwrap_or_default();
    let target_sample = Duration::from_millis(10).max(measurement_time / (sample_size as u32 * 4));
    let iters = if warm.is_zero() {
        1000
    } else {
        (target_sample.as_nanos() / warm.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    let budget = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if budget.elapsed() > measurement_time {
            break;
        }
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{name:<50} (no samples — bencher.iter never called)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} time: [{} {} {}] ({} samples x {} iters)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len(),
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a bench group: both the plain `criterion_group!(name, fns…)` form
/// and the braced `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Upstream criterion parses `--bench`/`--test`/filter args here;
            // the stand-in runs every group unconditionally. Bench targets
            // set `test = false` in Cargo.toml, so `cargo test` never
            // executes these mains by accident.
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut n = 0u64;
        quick().bench_function("smoke/add", |b| {
            b.iter(|| {
                n = n.wrapping_add(1);
                n
            })
        });
        assert!(n > 0, "routine never executed");
    }

    #[test]
    fn groups_chain_and_finish() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        let mut hits = 0u32;
        group.bench_function("one", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("fit", 32).to_string(), "fit/32");
        assert_eq!(BenchmarkId::from_parameter("warm").to_string(), "warm");
    }
}
