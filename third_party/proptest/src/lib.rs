//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no network access, so upstream proptest cannot
//! be downloaded. This crate keeps the call-site grammar the workspace's
//! tests already use — the [`proptest!`] macro with `pat in strategy`
//! arguments, `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! `prop::collection::vec`, range/tuple/`&str`-regex strategies,
//! `prop_assert*!` and `prop_assume!` — backed by a plain random sampler.
//!
//! Honest differences from upstream: no shrinking (a failing case reports
//! the sampled inputs as-is) and string strategies accept only the small
//! regex subset the tests use (`.`, `[...]` classes, `{lo,hi}`/`{n}`
//! repetition). Failures print the sampled values so cases stay
//! reproducible from the fixed per-test seed.

pub mod test_runner {
    //! Test-loop configuration and failure plumbing.

    /// How many sampled cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — fails the whole property.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped, not failed.
        Reject(String),
    }

    /// Deterministic test-local random source (SplitMix64).
    ///
    /// Seeded from the property's module path + name, so every run of a
    /// given test binary samples the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary byte string (e.g. the test's full name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, folded into a non-zero 64-bit seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Resume from a raw state previously read with [`TestRng::state`] —
        /// the replay path for persisted regression cases.
        pub fn from_state(state: u64) -> Self {
            TestRng { state }
        }

        /// The current raw state. Captured *before* a case is sampled, it
        /// pins that case exactly: `from_state(s)` resamples it verbatim.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[lo, hi)` over `u64`, empty-range safe only
        /// when `lo < hi`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical whole-domain strategy (see [`crate::prelude::any`]).
    pub trait ArbitraryValue: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let unit = rng.unit_f64() as f32 * 2.0 - 1.0;
            let mag = [1.0f32, 10.0, 1000.0][(rng.next_u64() % 3) as usize];
            unit * mag
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let unit = rng.unit_f64() * 2.0 - 1.0;
            let mag = [1.0f64, 10.0, 1000.0][(rng.next_u64() % 3) as usize];
            unit * mag
        }
    }

    /// Strategy form of [`ArbitraryValue`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // `&'static str` as a mini-regex string strategy, e.g. "[a-z ]{0,200}".
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    /// Alphabet used for `.`: printable ASCII plus a few accented letters.
    const DOT_ALPHABET: &[char] = &[
        ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0',
        '1', '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A',
        'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R',
        'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c',
        'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't',
        'u', 'v', 'w', 'x', 'y', 'z', '{', '|', '}', '~', 'é', 'ü', 'ñ', 'ø',
    ];

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class, `.`, or a literal character.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("proptest stand-in: unclosed `[` in {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty char class in {pattern:?}");
                    i = close + 1;
                    set
                }
                '.' => {
                    i += 1;
                    DOT_ALPHABET.to_vec()
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    assert!(
                        !"{}()*+?|^$".contains(c),
                        "proptest stand-in: unsupported regex feature `{c}` in {pattern:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition: {n} or {lo,hi}; default is exactly one.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("proptest stand-in: unclosed `{{` in {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repetition bound"),
                        b.trim().parse::<usize>().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + (rng.below((hi - lo + 1) as u64) as usize);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for test files: `use proptest::prelude::*;`.

    pub use crate::strategy::{Any, ArbitraryValue, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }

    /// Whole-domain strategy for `T` (`any::<bool>()`).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any::default()
    }
}

/// Regression-file plumbing: `<source>.proptest-regressions` siblings of
/// the test source, in upstream's line format (`cc <hex> # shrinks to …`).
pub mod regressions {
    use std::path::{Path, PathBuf};

    /// Parses the states recorded in one regression file.
    ///
    /// This stub records its own 64-bit [`TestRng`](crate::test_runner::TestRng)
    /// states as 16 hex digits. Longer digests (upstream proptest persists
    /// 256-bit RNG seeds) cannot be mapped back to the upstream case, so
    /// they are FNV-folded into a deterministic 64-bit state: the recorded
    /// line still replays first on every run, just not upstream's exact
    /// sample.
    pub fn parse(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let token = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
                if token.is_empty() || !token.chars().all(|c| c.is_ascii_hexdigit()) {
                    return None;
                }
                if token.len() == 16 {
                    u64::from_str_radix(token, 16).ok()
                } else {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in token.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    Some(h | 1)
                }
            })
            .collect()
    }

    /// Resolves the regression file next to a test source file.
    ///
    /// `file` is the test's `file!()` — relative to the directory cargo
    /// compiled from — and `manifest_dir` its `CARGO_MANIFEST_DIR`; the
    /// relationship between the two differs between the workspace-root
    /// package and member crates, so several joinings are tried:
    /// the manifest-relative path, the path as-is (cwd is the manifest dir
    /// under `cargo test`), and the subpath from the `tests`/`src`
    /// component rejoined to the manifest dir.
    ///
    /// Returns the first candidate that exists, else the first whose parent
    /// directory exists (the path a new failure would be persisted to).
    pub fn locate(file: &str, manifest_dir: &str) -> Option<PathBuf> {
        let src = Path::new(file);
        let manifest = Path::new(manifest_dir);
        let mut candidates: Vec<PathBuf> = vec![manifest.join(src), src.to_path_buf()];
        if let Some(pos) = src.components().position(|c| {
            matches!(c.as_os_str().to_str(), Some("tests") | Some("src"))
        }) {
            let sub: PathBuf = src.components().skip(pos).collect();
            candidates.push(manifest.join(sub));
        }
        for c in &mut candidates {
            c.set_extension("proptest-regressions");
        }
        if let Some(hit) = candidates.iter().find(|c| c.is_file()) {
            return Some(hit.clone());
        }
        candidates.into_iter().find(|c| c.parent().is_some_and(Path::is_dir))
    }

    /// Appends one failing state to the regression file, creating it with
    /// upstream's explanatory header if absent. Best-effort: persistence
    /// must never mask the test failure itself, so errors are swallowed.
    pub fn persist(path: &Path, name: &str, state: u64, message: &str) {
        let mut text = match std::fs::read_to_string(path) {
            Ok(existing) => existing,
            Err(_) => "# Seeds for failure cases proptest has generated in the past. It is\n\
                       # automatically read and these particular cases re-run before any\n\
                       # novel cases are generated.\n\
                       #\n\
                       # It is recommended to check this file in to source control so that\n\
                       # everyone who runs the test benefits from these saved cases.\n"
                .to_string(),
        };
        let line = format!("cc {state:016x} # {name}: {}\n", message.lines().next().unwrap_or(""));
        if text.contains(&format!("cc {state:016x}")) {
            return;
        }
        text.push_str(&line);
        let _ = std::fs::write(path, text);
    }
}

/// Run the property loop for one test. Called by the [`proptest!`] macro;
/// not part of upstream's public API.
pub fn run_property<F>(name: &str, config: &test_runner::Config, case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    run_property_inner(name, None, config, case);
}

/// [`run_property`] plus regression-file handling: recorded states from the
/// source file's `.proptest-regressions` sibling replay *before* any novel
/// case, and new failures are persisted there best-effort. Called by the
/// [`proptest!`] macro with `file!()` and `CARGO_MANIFEST_DIR`.
pub fn run_property_with_source<F>(
    name: &str,
    file: &str,
    manifest_dir: &str,
    config: &test_runner::Config,
    case: F,
) where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    run_property_inner(name, regressions::locate(file, manifest_dir).as_deref(), config, case);
}

fn run_property_inner<F>(
    name: &str,
    regression_file: Option<&std::path::Path>,
    config: &test_runner::Config,
    mut case: F,
) where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::{TestCaseError, TestRng};

    // Persisted regressions replay first: a case that failed once must be
    // the first thing a fix is checked against.
    if let Some(path) = regression_file {
        if let Ok(text) = std::fs::read_to_string(path) {
            for state in regressions::parse(&text) {
                let mut rng = TestRng::from_state(state);
                match case(&mut rng) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest `{name}`: persisted regression cc {state:016x} \
                         (from {}) still fails: {msg}",
                        path.display()
                    ),
                }
            }
        }
    }

    let mut rng = TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).saturating_add(1024);
    while passed < config.cases {
        let start_state = rng.state();
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                if let Some(path) = regression_file {
                    regressions::persist(path, name, start_state, &msg);
                }
                panic!(
                    "proptest `{name}` failed after {passed} passing cases \
                     (replay state cc {start_state:016x}): {msg}"
                );
            }
        }
    }
}

/// Property-test entry point; see the crate docs for supported grammar.
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(...)]`.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::run_property_with_source(
                    concat!(module_path!(), "::", stringify!($name)),
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                    &config,
                    |proptest_rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(
                                &($strat),
                                proptest_rng,
                            );
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fallible assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right),
            ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fallible inequality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right),
            ::std::format!($($fmt)+), left
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0, z in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u32..5, any::<bool>()),
            v in prop::collection::vec(0i32..100, 2..6),
        ) {
            prop_assert!(a < 5);
            let _ = b;
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        #[test]
        fn prop_map_transforms(n in (0u8..10).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn regex_classes_and_reps(s in "[a-z0-9]{2,5}", t in "ab.{0,3}", w in "[a-z]{1,8}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            prop_assert!(t.starts_with("ab"));
            prop_assert!(!w.is_empty());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn vec_of_regex_strings(words in prop::collection::vec("[a-z]{1,8}", 1..30)) {
            prop_assert!(!words.is_empty());
            for w in &words {
                prop_assert!((1..=8).contains(&w.len()), "bad length {}", w.len());
            }
        }
    }

    #[test]
    fn fixed_sizes_and_failures_report() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_name("fixed");
        let v = crate::collection::vec(-5.0f32..5.0, 4).sample(&mut rng);
        assert_eq!(v.len(), 4);

        let result = std::panic::catch_unwind(|| {
            crate::run_property(
                "always_fails",
                &crate::test_runner::Config::with_cases(3),
                |_rng| {
                    crate::prop_assert!(1 == 2, "one is not two");
                    Ok(())
                },
            );
        });
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("one is not two"), "got: {err}");
    }

    #[test]
    fn regression_lines_parse_both_formats() {
        let text = "# header comment\n\
                    \n\
                    cc 00000000000022bc # shrinks to seed = 8892\n\
                    cc 0a0f7d71f8099b60b36e01241330840a79ae4f271a90469912c4dfd503464b1a # upstream digest\n\
                    not a cc line\n\
                    cc nothex # ignored\n";
        let states = crate::regressions::parse(text);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0], 0x22bc, "16-hex tokens are exact states");
        assert_ne!(states[1], 0, "long digests fold to a non-zero state");
        // Folding is deterministic run-to-run.
        assert_eq!(states, crate::regressions::parse(text));
    }

    #[test]
    fn recorded_state_replays_before_novel_cases() {
        use std::sync::{Arc, Mutex};

        let dir = std::env::temp_dir().join(format!("proptest-stub-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay_first.proptest-regressions");
        let recorded: u64 = 0xDEAD_BEEF_0000_0001;
        std::fs::write(&path, format!("# header\ncc {recorded:016x} # shrinks to x = 7\n")).unwrap();

        // Record the sampling order: the persisted state must come first,
        // producing exactly the sample that state pins.
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        crate::run_property_inner(
            "replay_first",
            Some(&path),
            &crate::test_runner::Config::with_cases(3),
            move |rng| {
                seen2.lock().unwrap().push(rng.state());
                let _ = rng.next_u64();
                Ok(())
            },
        );
        std::fs::remove_dir_all(&dir).ok();

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4, "1 replayed + 3 novel cases");
        assert_eq!(seen[0], recorded, "the persisted case must run first");
        let expected = crate::test_runner::TestRng::from_name("replay_first").state();
        assert_eq!(seen[1], expected, "novel cases start from the name seed as before");
    }

    #[test]
    fn new_failures_are_persisted_and_still_fail_on_replay() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persisting.proptest-regressions");

        let run = |path: &std::path::Path| {
            let path = path.to_path_buf();
            std::panic::catch_unwind(move || {
                crate::run_property_inner(
                    "persisting",
                    Some(&path),
                    &crate::test_runner::Config::with_cases(5),
                    |rng| {
                        let v = rng.next_u64() % 4;
                        crate::prop_assert!(v != 3, "hit the bad value");
                        Ok(())
                    },
                );
            })
        };

        assert!(run(&path).is_err(), "the property must fail within 5 cases");
        let text = std::fs::read_to_string(&path).expect("failure must be persisted");
        assert_eq!(crate::regressions::parse(&text).len(), 1, "exactly one cc line: {text}");
        assert!(text.starts_with("# Seeds for failure cases"), "header written: {text}");

        // Second run replays the persisted case first and reports it as such.
        let err = run(&path).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("persisted regression"), "got: {msg}");

        // Re-failing must not duplicate the line.
        let text2 = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::regressions::parse(&text2).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_name_same_samples() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("stable");
        let mut b = TestRng::from_name("stable");
        for _ in 0..32 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
